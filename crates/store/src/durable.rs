//! [`DurableStore`]: the per-replica write-ahead log + snapshot engine,
//! implementing [`esds_alg::Persistence`].
//!
//! # File layout
//!
//! Generation-numbered, append-only files in one flat [`Storage`]
//! namespace: `wal-<g>.log` (framed [`WalDelta`](esds_alg::WalDelta)
//! records) and `snap-<g>.img` (one framed memo image). A checkpoint
//! writes and syncs `snap-(g+1)`, then writes and syncs `wal-(g+1)`
//! seeded with the re-logged unstable suffix, and only then removes
//! older generations — so at every crash point the surviving files
//! reconstruct the replica:
//!
//! * crash before the new snapshot syncs → the torn `snap-(g+1)` is
//!   skipped and generation `g` (still intact) recovers;
//! * crash after the snapshot but before/inside the new log → the new
//!   snapshot plus the *old* logs recover (replay is idempotent and
//!   records for prefix ops are skipped);
//! * crash mid-removal → leftover old generations are replayed
//!   harmlessly.
//!
//! Recovery loads the newest decodable snapshot and replays **all**
//! surviving logs in ascending generation order. A torn record at a
//! log's end is dropped with a diagnostic ([`RecoverReport`]); a record
//! that is complete but fails its checksum refuses recovery with
//! [`StoreError::Corrupt`] — never a silent skip.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;

use esds_alg::{Persistence, Replica, ReplicaConfig, RestoreImage};
use esds_core::{Label, OpId, ReplicaId, SerialDataType};
use esds_wire::Wire;

use crate::snapshot::Snapshot;
use crate::storage::{corrupt, Storage, StoreError};
use crate::wal::{decode_record, encode_admit, encode_label, frame_into, WalRecord};

/// Policy knobs of a [`DurableStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableConfig {
    /// Cut a snapshot (and truncate the log to the unstable suffix)
    /// once this many records accumulated since the last one. `None`
    /// never snapshots: the log grows without bound (WAL-only mode,
    /// useful for benchmarks and tests).
    pub snapshot_every: Option<u64>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            snapshot_every: Some(256),
        }
    }
}

impl DurableConfig {
    /// WAL-only: never snapshot.
    pub fn wal_only() -> Self {
        DurableConfig {
            snapshot_every: None,
        }
    }
}

/// Counters of the persistence hot path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (admits + label minima).
    pub appended_records: u64,
    /// Bytes appended to logs.
    pub appended_bytes: u64,
    /// Sync barriers issued.
    pub syncs: u64,
    /// Snapshots cut.
    pub snapshots: u64,
}

/// What [`DurableStore::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct RecoverReport {
    /// False when the store was empty (a fresh boot, not a recovery).
    pub recovered: bool,
    /// Generation of the snapshot used, if any.
    pub snapshot_gen: Option<u64>,
    /// Torn snapshot files that were skipped in favor of an older
    /// generation.
    pub skipped_snapshots: Vec<String>,
    /// Log records replayed.
    pub wal_records: u64,
    /// Per log file, the size of the torn tail dropped (only files with
    /// a nonzero tail are listed).
    pub torn_tails: Vec<(String, usize)>,
    /// Ops restored from the snapshot prefix.
    pub prefix_len: usize,
    /// Ops restored from the log suffix.
    pub suffix_len: usize,
}

impl fmt::Display for RecoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.recovered {
            return write!(f, "fresh store (no prior state)");
        }
        write!(
            f,
            "recovered {} prefix + {} suffix ops from {} log records{}",
            self.prefix_len,
            self.suffix_len,
            self.wal_records,
            match self.snapshot_gen {
                Some(g) => format!(" (snapshot generation {g})"),
                None => " (no snapshot)".to_string(),
            }
        )?;
        for (file, bytes) in &self.torn_tails {
            write!(f, "; dropped {bytes}-byte torn tail of {file}")?;
        }
        for file in &self.skipped_snapshots {
            write!(f, "; skipped torn snapshot {file}")?;
        }
        Ok(())
    }
}

fn wal_name(g: u64) -> String {
    format!("wal-{g:010}.log")
}

fn snap_name(g: u64) -> String {
    format!("snap-{g:010}.img")
}

fn parse_gen(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// The write-ahead log + snapshot engine for one replica, over any
/// [`Storage`] backend. Drive it with [`DurableStore::persist`] after
/// every mutating handler (the sync-before-release discipline of
/// [`esds_alg::Persistence`]); it checkpoints itself per
/// [`DurableConfig::snapshot_every`].
pub struct DurableStore<T: SerialDataType, S> {
    storage: S,
    gen: u64,
    cfg: DurableConfig,
    records_since_snapshot: u64,
    stats: WalStats,
    obs: StoreMetrics,
    _dt: PhantomData<fn() -> T>,
}

/// Registry handles of the persistence hot path. All no-ops until
/// [`DurableStore::attach_metrics`] is called.
#[derive(Clone, Debug, Default)]
struct StoreMetrics {
    /// Latency of one durable append + fsync barrier, µs.
    sync_us: esds_obs::Histo,
    records: esds_obs::Counter,
    bytes: esds_obs::Counter,
    syncs: esds_obs::Counter,
    checkpoints: esds_obs::Counter,
    generation: esds_obs::Gauge,
}

impl<T, S> DurableStore<T, S>
where
    T: SerialDataType,
    T::Operator: Wire,
    T::Value: Wire,
    T::State: Wire,
    S: Storage,
{
    /// Opens the store, recovering the replica from whatever survives
    /// on `storage`. An empty store boots a fresh [`Replica::new`]; any
    /// prior state restores via [`Replica::restore`], which re-enters
    /// the group through the §9.3 recovery gate (passive until every
    /// pre-crash label's op is re-received).
    ///
    /// `config.durable` is forced on so the replica tracks its
    /// [`esds_alg::WalDelta`].
    ///
    /// # Errors
    ///
    /// Backend failures, [`StoreError::Corrupt`] for damaged records or
    /// snapshots, and identity mismatches (a store opened for the wrong
    /// replica or cluster size).
    #[allow(clippy::type_complexity)]
    pub fn open(
        dt: T,
        storage: S,
        id: ReplicaId,
        n: usize,
        mut config: ReplicaConfig,
        cfg: DurableConfig,
    ) -> Result<(Self, Replica<T>, RecoverReport), StoreError> {
        config.durable = true;
        let mut report = RecoverReport::default();

        let files = storage.list()?;
        let wal_gens: Vec<u64> = files
            .iter()
            .filter_map(|f| parse_gen(f, "wal-", ".log"))
            .collect();
        let mut snap_gens: Vec<u64> = files
            .iter()
            .filter_map(|f| parse_gen(f, "snap-", ".img"))
            .collect();
        snap_gens.sort_unstable();

        // Newest decodable snapshot; torn ones fall back a generation.
        let mut snapshot: Option<(u64, Snapshot<T>)> = None;
        for &g in snap_gens.iter().rev() {
            let name = snap_name(g);
            let Some(bytes) = storage.read(&name)? else {
                continue;
            };
            match Snapshot::<T>::decode(&name, &bytes)? {
                Some(s) => {
                    if s.replica != id || s.n != n as u64 {
                        return Err(corrupt(
                            &name,
                            0,
                            format!(
                                "snapshot identity mismatch: wrote ({:?}, n={}), opening ({id:?}, n={n})",
                                s.replica, s.n
                            ),
                        ));
                    }
                    snapshot = Some((g, s));
                    break;
                }
                None => {
                    // A torn snapshot is only possible if the crash hit
                    // before its sync completed — in which case the same
                    // generation's log was never created (it is written
                    // strictly after). A surviving log of this generation
                    // means the snapshot bytes rotted, and falling back
                    // would lose its prefix-only ops.
                    if wal_gens.contains(&g) {
                        return Err(corrupt(
                            &name,
                            0,
                            "snapshot unreadable but its log generation exists",
                        ));
                    }
                    report.skipped_snapshots.push(name);
                }
            }
        }

        // Replay all surviving logs, ascending.
        let prefix_ids: BTreeSet<OpId> = snapshot
            .iter()
            .flat_map(|(_, s)| s.prefix.iter().map(|e| e.id))
            .collect();
        let mut admitted: BTreeMap<OpId, esds_core::OpDescriptor<T::Operator>> = BTreeMap::new();
        let mut labels: BTreeMap<OpId, Label> = BTreeMap::new();
        let mut max_own_counter: Option<u64> = None;
        let mut sorted_wals = wal_gens.clone();
        sorted_wals.sort_unstable();
        for &g in &sorted_wals {
            let name = wal_name(g);
            let Some(bytes) = storage.read(&name)? else {
                continue;
            };
            let scan = crate::wal::scan_frames(&name, &bytes)?;
            if scan.torn_bytes > 0 {
                report.torn_tails.push((name.clone(), scan.torn_bytes));
            }
            let mut offset = 0usize;
            for payload in scan.records {
                match decode_record::<T::Operator>(&name, offset, payload)? {
                    WalRecord::Admit(d) => {
                        if !prefix_ids.contains(&d.id) {
                            admitted.entry(d.id).or_insert(d);
                        }
                    }
                    WalRecord::Label(op, l) => {
                        if l.replica == id {
                            max_own_counter = Some(max_own_counter.unwrap_or(0).max(l.counter));
                        }
                        labels
                            .entry(op)
                            .and_modify(|cur| *cur = (*cur).min(l))
                            .or_insert(l);
                    }
                }
                offset += crate::wal::FRAME_HEADER + payload.len();
                report.wal_records += 1;
            }
        }

        let any_files = !wal_gens.is_empty() || !snap_gens.is_empty();
        let max_gen = wal_gens
            .iter()
            .copied()
            .chain(snap_gens.iter().copied())
            .max()
            .unwrap_or(0);

        let replica = if any_files {
            let next_counter = snapshot
                .as_ref()
                .map_or(0, |(_, s)| s.next_counter)
                .max(max_own_counter.map_or(0, |c| c + 1));
            let (state, prefix) = match snapshot {
                Some((g, s)) => {
                    report.snapshot_gen = Some(g);
                    (s.state, s.prefix)
                }
                None => (dt.initial_state(), Vec::new()),
            };
            report.recovered = true;
            report.prefix_len = prefix.len();
            report.suffix_len = admitted.len();
            let suffix_labels: Vec<(OpId, Label)> = labels
                .into_iter()
                .filter(|(op, _)| !prefix_ids.contains(op))
                .collect();
            let img = RestoreImage {
                id,
                next_counter,
                prefix,
                state,
                suffix_rcvd: admitted.into_values().collect(),
                suffix_labels,
            };
            Replica::restore(dt, img, n, config)
        } else {
            Replica::new(dt, id, n, config)
        };

        let store = DurableStore {
            storage,
            // Never append to a recovered log (its tail may be torn);
            // start a fresh generation and let the next checkpoint
            // retire the old files.
            gen: if any_files { max_gen + 1 } else { 0 },
            cfg,
            records_since_snapshot: report.wal_records,
            stats: WalStats::default(),
            obs: StoreMetrics::default(),
            _dt: PhantomData,
        };
        Ok((store, replica, report))
    }

    /// Durably appends the replica's drained [`esds_alg::WalDelta`] and
    /// syncs, then checkpoints if the policy says so. Call after every
    /// mutating handler, **before** releasing its effects.
    ///
    /// # Errors
    ///
    /// Backend failures. The caller must treat an error as the
    /// replica's death (drop the effects).
    ///
    /// # Panics
    ///
    /// Panics if an admitted op's descriptor is gone from `rcvd` —
    /// i.e. [`Replica::compact`] ran between the handler and this call,
    /// which the durable driver must never do (checkpointing is the
    /// durable form of compaction).
    pub fn persist(&mut self, rep: &mut Replica<T>) -> Result<(), StoreError> {
        let delta = rep.take_wal_delta();
        if !delta.is_empty() {
            let mut buf = Vec::new();
            let mut n = 0u64;
            for opid in &delta.admitted {
                let d = rep
                    .rcvd()
                    .get(opid)
                    .expect("admitted descriptor still in rcvd at persist time");
                frame_into(&mut buf, &encode_admit(d));
                n += 1;
            }
            for (opid, l) in &delta.labels {
                frame_into(&mut buf, &encode_label(*opid, *l));
                n += 1;
            }
            let name = wal_name(self.gen);
            let t0 = self.obs.sync_us.is_enabled().then(std::time::Instant::now);
            self.storage.append(&name, &buf)?;
            self.storage.sync(&name)?;
            if let Some(t0) = t0 {
                self.obs.sync_us.record(t0.elapsed().as_micros() as u64);
            }
            self.stats.appended_records += n;
            self.stats.appended_bytes += buf.len() as u64;
            self.stats.syncs += 1;
            self.obs.records.add(n);
            self.obs.bytes.add(buf.len() as u64);
            self.obs.syncs.inc();
            self.records_since_snapshot += n;
        }
        if let Some(every) = self.cfg.snapshot_every {
            if self.records_since_snapshot >= every {
                self.checkpoint(rep)?;
            }
        }
        Ok(())
    }

    /// Cuts a snapshot at the current memo fence and truncates the log
    /// to the unstable suffix (a new generation; older files removed).
    /// Returns `false` if skipped — the replica is still in the §9.3
    /// recovery gate, or does not memoize.
    ///
    /// # Errors
    ///
    /// Backend failures.
    pub fn checkpoint(&mut self, rep: &mut Replica<T>) -> Result<bool, StoreError> {
        // The state below already reflects any undrained delta.
        let _ = rep.take_wal_delta();
        if rep.is_recovering() || rep.memo_state().is_none() {
            return Ok(false);
        }
        let new_gen = self.gen + 1;
        let snap = snap_name(new_gen);
        self.storage.append(&snap, &Snapshot::of(rep).encode())?;
        self.storage.sync(&snap)?;

        // Re-log the unstable suffix into the new generation's log.
        let memo_ids: BTreeSet<OpId> = rep.memo_order().iter().copied().collect();
        let mut buf = Vec::new();
        let mut n = 0u64;
        for (opid, d) in rep.rcvd() {
            if !memo_ids.contains(opid) {
                frame_into(&mut buf, &encode_admit(d));
                n += 1;
            }
        }
        for (opid, l) in rep.labels().iter() {
            if !memo_ids.contains(&opid) {
                frame_into(&mut buf, &encode_label(opid, l));
                n += 1;
            }
        }
        let wal = wal_name(new_gen);
        if !buf.is_empty() {
            self.storage.append(&wal, &buf)?;
            self.storage.sync(&wal)?;
            self.stats.appended_records += n;
            self.stats.appended_bytes += buf.len() as u64;
            self.stats.syncs += 1;
            self.obs.records.add(n);
            self.obs.bytes.add(buf.len() as u64);
            self.obs.syncs.inc();
        }

        // Older generations are now redundant.
        for f in self.storage.list()? {
            let g = parse_gen(&f, "wal-", ".log").or_else(|| parse_gen(&f, "snap-", ".img"));
            if matches!(g, Some(g) if g < new_gen) {
                self.storage.remove(&f)?;
            }
        }
        self.gen = new_gen;
        // Count only *new* records toward the next snapshot — a suffix
        // that never shrinks must not cause a checkpoint per persist.
        self.records_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.obs.checkpoints.inc();
        self.obs.generation.set(new_gen);
        Ok(true)
    }

    /// Reports the persistence hot path into a metrics scope
    /// (conventionally `shard{s}/replica{r}/wal`): `sync_us` append +
    /// fsync latency histogram, `records`/`bytes`/`syncs` counters,
    /// `checkpoints` counter, and the `generation` gauge. No-op cost
    /// when the scope's registry is disabled.
    pub fn attach_metrics(&mut self, scope: &esds_obs::Scope) {
        self.obs = StoreMetrics {
            sync_us: scope.histogram("sync_us"),
            records: scope.counter("records"),
            bytes: scope.counter("bytes"),
            syncs: scope.counter("syncs"),
            checkpoints: scope.counter("checkpoints"),
            generation: scope.gauge("generation"),
        };
        self.obs.generation.set(self.gen);
    }

    /// Hot-path counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Current file generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The backing storage (e.g. to take a [`crate::MemStorage`]
    /// survivor image in tests).
    pub fn storage(&self) -> &S {
        &self.storage
    }
}

impl<T, S> Persistence<T> for DurableStore<T, S>
where
    T: SerialDataType,
    T::Operator: Wire,
    T::Value: Wire,
    T::State: Wire,
    S: Storage,
{
    fn persist(&mut self, replica: &mut Replica<T>) -> Result<(), String> {
        DurableStore::persist(self, replica).map_err(|e| e.to_string())
    }
}

//! Write-ahead-log record framing and codec.
//!
//! Every record is framed as `[len: u32 LE][fnv1a64(payload): u64 LE]
//! [payload]`. The fixed-width header makes torn-write classification
//! exact: an *incomplete frame at end-of-file* (header cut short, or a
//! payload shorter than its declared length) is the footprint of an
//! interrupted append and is dropped with a diagnostic; a *complete*
//! frame whose checksum does not verify is corruption and fails
//! recovery — acknowledged operations are never silently skipped.

use esds_core::{Label, OpDescriptor, OpId};
use esds_wire::Wire;

use crate::storage::{corrupt, StoreError};

/// Frame header size: u32 length + u64 checksum.
pub(crate) const FRAME_HEADER: usize = 12;

/// Upper bound on a single record's payload. A complete header
/// declaring more than this cannot be a truncation artifact (truncation
/// only shortens) and is classified as corruption.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 28;

/// FNV-1a, 64-bit.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one framed record to `out`.
pub(crate) fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The verified payloads of one log file, plus the size of the torn
/// tail (0 if the file ends on a frame boundary).
pub(crate) struct FrameScan<'a> {
    pub records: Vec<&'a [u8]>,
    pub torn_bytes: usize,
}

/// Walks the frames of `bytes`, verifying each checksum.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on a checksum mismatch or an impossible
/// declared length; a torn tail is *not* an error.
pub(crate) fn scan_frames<'a>(file: &str, bytes: &'a [u8]) -> Result<FrameScan<'a>, StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Err(corrupt(
                file,
                pos,
                format!("declared record length {len} exceeds maximum {MAX_RECORD_LEN}"),
            ));
        }
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let end = pos + FRAME_HEADER + len as usize;
        if end > bytes.len() {
            break; // torn tail: payload cut short by an interrupted append
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if fnv1a64(payload) != crc {
            return Err(corrupt(file, pos, "record checksum mismatch"));
        }
        records.push(payload);
        pos = end;
    }
    Ok(FrameScan {
        records,
        torn_bytes: bytes.len() - pos,
    })
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

const TAG_ADMIT: u8 = 1;
const TAG_LABEL: u8 = 2;

/// One durable fact about a replica, mirroring [`esds_alg::WalDelta`]:
/// an operation entered `rcvd`, or an op's label minimum changed.
pub(crate) enum WalRecord<O> {
    Admit(OpDescriptor<O>),
    Label(OpId, Label),
}

/// Encodes an admit record's payload.
pub(crate) fn encode_admit<O: Wire>(d: &OpDescriptor<O>) -> Vec<u8> {
    let mut b = vec![TAG_ADMIT];
    d.encode(&mut b);
    b
}

/// Encodes a label record's payload.
pub(crate) fn encode_label(id: OpId, l: Label) -> Vec<u8> {
    let mut b = vec![TAG_LABEL];
    id.encode(&mut b);
    l.encode(&mut b);
    b
}

/// Decodes one checksummed record payload. The checksum already
/// verified, so any decode failure here is corruption (or a version
/// mismatch), never a torn write.
pub(crate) fn decode_record<O: Wire>(
    file: &str,
    offset: usize,
    payload: &[u8],
) -> Result<WalRecord<O>, StoreError> {
    let mut buf = payload;
    let tag = esds_wire::codec::get_u8(&mut buf, "wal record tag")
        .map_err(|e| corrupt(file, offset, format!("unreadable record tag: {e}")))?;
    let rec = match tag {
        TAG_ADMIT => WalRecord::Admit(
            OpDescriptor::<O>::decode(&mut buf)
                .map_err(|e| corrupt(file, offset, format!("bad admit record: {e}")))?,
        ),
        TAG_LABEL => {
            let id = OpId::decode(&mut buf)
                .map_err(|e| corrupt(file, offset, format!("bad label record id: {e}")))?;
            let l = Label::decode(&mut buf)
                .map_err(|e| corrupt(file, offset, format!("bad label record label: {e}")))?;
            WalRecord::Label(id, l)
        }
        t => return Err(corrupt(file, offset, format!("unknown record tag {t}"))),
    };
    if !buf.is_empty() {
        return Err(corrupt(
            file,
            offset,
            format!("{} trailing bytes after record", buf.len()),
        ));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{ClientId, ReplicaId};

    fn sample_log() -> Vec<u8> {
        let mut out = Vec::new();
        frame_into(
            &mut out,
            &encode_label(OpId::new(ClientId(1), 7), Label::new(3, ReplicaId(0))),
        );
        frame_into(
            &mut out,
            &encode_label(OpId::new(ClientId(2), 9), Label::new(4, ReplicaId(1))),
        );
        out
    }

    #[test]
    fn scan_round_trips_and_classifies_torn_tails() {
        let log = sample_log();
        let scan = scan_frames("wal", &log).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);

        // Every proper truncation is torn (never corrupt), and yields a
        // prefix of the records.
        for cut in 0..log.len() {
            let scan = scan_frames("wal", &log[..cut]).unwrap();
            assert!(scan.records.len() <= 2);
            assert_eq!(scan.torn_bytes > 0, cut % (log.len() / 2) != 0);
            for (got, want) in scan
                .records
                .iter()
                .zip(scan_frames("wal", &log).unwrap().records)
            {
                assert_eq!(*got, want);
            }
        }
    }

    #[test]
    fn payload_bit_rot_is_corruption() {
        let mut log = sample_log();
        let payload_at = FRAME_HEADER + 2;
        log[payload_at] ^= 0xff;
        match scan_frames("wal", &log) {
            Err(StoreError::Corrupt { file, offset, .. }) => {
                assert_eq!(file, "wal");
                assert_eq!(offset, 0);
            }
            other => panic!(
                "expected Corrupt, got {other:?}",
                other = other.map(|s| s.records.len())
            ),
        }
    }

    #[test]
    fn absurd_length_is_corruption_not_torn() {
        let mut log = vec![0u8; FRAME_HEADER];
        log[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            scan_frames("wal", &log),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn record_codec_round_trips_and_rejects_garbage() {
        let id = OpId::new(ClientId(3), 11);
        let l = Label::new(9, ReplicaId(2));
        let payload = encode_label(id, l);
        match decode_record::<u64>("wal", 0, &payload).unwrap() {
            WalRecord::Label(i, lab) => {
                assert_eq!(i, id);
                assert_eq!(lab, l);
            }
            WalRecord::Admit(_) => panic!("wrong variant"),
        }
        assert!(matches!(
            decode_record::<u64>("wal", 0, &[99, 0, 0]),
            Err(StoreError::Corrupt { .. })
        ));
    }
}

//! # esds-store
//!
//! Durable replica storage for ESDS deployments: a per-replica
//! write-ahead op log plus periodic state snapshots at the stable
//! fence, recovered through the paper's §9.3 crash/incarnation path.
//!
//! * [`Storage`] — the byte-level backend: [`FileStorage`] (real
//!   append-only files) and [`MemStorage`] (deterministic, with an
//!   injectable [`CrashPlan`] crash-point / torn-write fault plane);
//! * [`DurableStore`] — the engine: appends each handler's
//!   [`esds_alg::WalDelta`] as length-prefixed FNV-checksummed records
//!   over the [`esds_wire::Wire`] codec, syncs before the driver
//!   releases effects, and checkpoints by snapshotting the §10.1 memo
//!   prefix and truncating the log to the unstable suffix;
//! * [`Snapshot`] — the memo-image file format;
//! * [`RecoverReport`] — what [`DurableStore::open`] found: snapshot
//!   generation, records replayed, torn tails dropped (with
//!   diagnostics; *corrupt* records are refused, never skipped).
//!
//! The store implements [`esds_alg::Persistence`], so the threaded
//! runtime, TCP nodes, and the simulator all drive it the same way.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
pub mod snapshot;
pub mod storage;
mod wal;

pub use durable::{DurableConfig, DurableStore, RecoverReport, WalStats};
pub use snapshot::Snapshot;
pub use storage::{CrashPlan, FileStorage, MemStorage, Storage, StoreError};

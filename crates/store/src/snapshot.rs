//! State snapshots at the stable fence.
//!
//! A snapshot is the §10.1 memo image — exactly what
//! [`esds_alg::RestoreImage`] carries as its prefix: per op its frozen
//! label, fixed value (Lemma 10.2), and stability flags, plus the
//! memoized state and the label-counter floor. Because the memo prefix's
//! serialization is final, cutting a snapshot needs no coordination with
//! the gossip path — it is a pure read of the replica.
//!
//! On disk: an 8-byte magic followed by one checksummed frame (same
//! framing as the log). A snapshot file cut short by a crash decodes to
//! `Ok(None)` — recovery falls back to the previous generation — while a
//! complete frame that fails verification is [`StoreError::Corrupt`].

use esds_core::{ReplicaId, SerialDataType};
use esds_wire::codec::{get_varint, put_varint};
use esds_wire::{Wire, WireError};

use esds_alg::{PrefixEntry, Replica};
use esds_core::{Label, OpId};

use crate::storage::{corrupt, StoreError};
use crate::wal::{frame_into, scan_frames};

pub(crate) const SNAP_MAGIC: &[u8; 8] = b"ESDSSNP1";

/// A durable image of one replica's memo prefix.
pub struct Snapshot<T: SerialDataType> {
    /// Identity of the snapshotting replica.
    pub replica: ReplicaId,
    /// Cluster size the replica was configured with.
    pub n: u64,
    /// Label-counter floor (one past every label the replica minted).
    pub next_counter: u64,
    /// The memo prefix, in strictly increasing label order.
    pub prefix: Vec<PrefixEntry<T>>,
    /// The memoized state after applying the prefix.
    pub state: T::State,
}

fn wire_corrupt(file: &str, what: &str, e: WireError) -> StoreError {
    corrupt(file, 0, format!("bad snapshot {what}: {e}"))
}

impl<T> Snapshot<T>
where
    T: SerialDataType,
    T::Value: Wire,
    T::State: Wire,
{
    /// Captures the current memo image of `rep`.
    ///
    /// # Panics
    ///
    /// Panics if memoization is disabled (durable replicas require it).
    pub fn of(rep: &Replica<T>) -> Self {
        let prefix = rep
            .memo_order()
            .iter()
            .map(|&id| PrefixEntry {
                id,
                label: rep
                    .labels()
                    .get(id)
                    .finite()
                    .expect("memoized ops are labeled"),
                value: rep.memo_value(id).expect("memoized value present").clone(),
                stable_here: rep.stable_here().contains(&id),
                stable_everywhere: rep.stable_everywhere().contains(&id),
            })
            .collect();
        Snapshot {
            replica: rep.id(),
            n: rep.n() as u64,
            next_counter: rep.next_label_counter(),
            prefix,
            state: rep
                .memo_state()
                .expect("durable replicas memoize (§10.1)")
                .clone(),
        }
    }

    /// The full on-disk bytes of this snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.replica.encode(&mut payload);
        put_varint(&mut payload, self.n);
        put_varint(&mut payload, self.next_counter);
        put_varint(&mut payload, self.prefix.len() as u64);
        for e in &self.prefix {
            e.id.encode(&mut payload);
            e.label.encode(&mut payload);
            e.value.encode(&mut payload);
            e.stable_here.encode(&mut payload);
            e.stable_everywhere.encode(&mut payload);
        }
        self.state.encode(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + SNAP_MAGIC.len() + 12);
        out.extend_from_slice(SNAP_MAGIC);
        frame_into(&mut out, &payload);
        out
    }

    /// Decodes an on-disk snapshot. `Ok(None)` means the file is torn
    /// (cut short mid-write) and an older generation should be used;
    /// [`StoreError::Corrupt`] means the bytes are complete but wrong.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on checksum or decode failure.
    pub fn decode(file: &str, bytes: &[u8]) -> Result<Option<Self>, StoreError> {
        if bytes.len() < SNAP_MAGIC.len() {
            return Ok(None); // torn before the magic completed
        }
        if &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(corrupt(file, 0, "bad snapshot magic"));
        }
        let scan = scan_frames(file, &bytes[SNAP_MAGIC.len()..])?;
        let payload = match scan.records.as_slice() {
            [] => return Ok(None), // torn mid-frame
            [p] if scan.torn_bytes == 0 => *p,
            _ => {
                return Err(corrupt(
                    file,
                    SNAP_MAGIC.len(),
                    "snapshot must contain exactly one record",
                ))
            }
        };
        let mut buf = payload;
        let replica =
            ReplicaId::decode(&mut buf).map_err(|e| wire_corrupt(file, "replica id", e))?;
        let n = get_varint(&mut buf).map_err(|e| wire_corrupt(file, "cluster size", e))?;
        let next_counter =
            get_varint(&mut buf).map_err(|e| wire_corrupt(file, "label counter", e))?;
        let len = get_varint(&mut buf).map_err(|e| wire_corrupt(file, "prefix length", e))?;
        let mut prefix = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            let id = OpId::decode(&mut buf).map_err(|e| wire_corrupt(file, "prefix id", e))?;
            let label =
                Label::decode(&mut buf).map_err(|e| wire_corrupt(file, "prefix label", e))?;
            let value =
                T::Value::decode(&mut buf).map_err(|e| wire_corrupt(file, "prefix value", e))?;
            let stable_here =
                bool::decode(&mut buf).map_err(|e| wire_corrupt(file, "stability flag", e))?;
            let stable_everywhere =
                bool::decode(&mut buf).map_err(|e| wire_corrupt(file, "stability flag", e))?;
            prefix.push(PrefixEntry {
                id,
                label,
                value,
                stable_here,
                stable_everywhere,
            });
        }
        let state = T::State::decode(&mut buf).map_err(|e| wire_corrupt(file, "state", e))?;
        if !buf.is_empty() {
            return Err(corrupt(
                file,
                0,
                format!("{} trailing bytes after snapshot", buf.len()),
            ));
        }
        Ok(Some(Snapshot {
            replica,
            n,
            next_counter,
            prefix,
            state,
        }))
    }
}

//! The byte-level [`Storage`] backend abstraction and its two
//! implementations: real append-only files ([`FileStorage`]) and a
//! deterministic in-memory backend with an injectable crash-point /
//! torn-write fault plane ([`MemStorage`]).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Errors of the storage layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure of the underlying backend.
    Io(String),
    /// The injected crash point was reached ([`MemStorage`] only): the
    /// simulated machine has lost power and every further operation
    /// fails. Recover via [`MemStorage::survivor`].
    Crashed,
    /// A complete, checksummed record failed verification or decoding.
    /// Unlike a torn tail (an incomplete record at end-of-file, which is
    /// the expected shape of an interrupted append and is dropped with a
    /// diagnostic), corruption is never skipped: recovery refuses the
    /// store rather than silently losing acknowledged operations.
    Corrupt {
        /// File the bad record lives in.
        file: String,
        /// Byte offset of the record's frame header.
        offset: usize,
        /// What failed to verify.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
            StoreError::Crashed => write!(f, "storage crashed at the injected crash point"),
            StoreError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt record in {file} at byte {offset}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

pub(crate) fn corrupt(file: &str, offset: usize, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        file: file.to_string(),
        offset,
        detail: detail.into(),
    }
}

fn io_err(e: io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// A flat namespace of append-only files — everything [`DurableStore`](crate::durable::DurableStore)
/// (see [`crate::durable`]) needs from a disk.
///
/// The contract mirrors POSIX semantics: [`append`](Storage::append) may
/// buffer; only bytes appended before a completed
/// [`sync`](Storage::sync) are guaranteed to survive a crash, and an
/// interrupted append may leave a *torn* prefix of itself on disk.
pub trait Storage: Send {
    /// Appends `bytes` to `file`, creating it if absent.
    ///
    /// # Errors
    ///
    /// Backend failure, or [`StoreError::Crashed`] past a crash point.
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Forces all appended bytes of `file` to durable storage.
    ///
    /// # Errors
    ///
    /// Backend failure, or [`StoreError::Crashed`] past a crash point.
    fn sync(&mut self, file: &str) -> Result<(), StoreError>;

    /// Reads the full contents of `file` (`None` if it does not exist).
    ///
    /// # Errors
    ///
    /// Backend failure.
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Removes `file`; removing a missing file is not an error.
    ///
    /// # Errors
    ///
    /// Backend failure, or [`StoreError::Crashed`] past a crash point.
    fn remove(&mut self, file: &str) -> Result<(), StoreError>;

    /// Lists all files, sorted by name.
    ///
    /// # Errors
    ///
    /// Backend failure.
    fn list(&self) -> Result<Vec<String>, StoreError>;
}

// ---------------------------------------------------------------------
// FileStorage
// ---------------------------------------------------------------------

/// Real files in one directory, opened in append mode with handles
/// cached across calls. [`Storage::sync`] is `fsync` on the file plus
/// the directory (so newly created log/snapshot files survive too).
pub struct FileStorage {
    dir: PathBuf,
    handles: BTreeMap<String, File>,
}

impl FileStorage {
    /// Opens (creating if needed) the directory backing this store.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        Ok(FileStorage {
            dir,
            handles: BTreeMap::new(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn handle(&mut self, file: &str) -> Result<&mut File, StoreError> {
        if !self.handles.contains_key(file) {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(file))
                .map_err(io_err)?;
            self.handles.insert(file.to_string(), f);
        }
        Ok(self.handles.get_mut(file).expect("inserted above"))
    }
}

impl Storage for FileStorage {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.handle(file)?.write_all(bytes).map_err(io_err)
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        self.handle(file)?.sync_all().map_err(io_err)?;
        // Durability of the file's existence, not just its bytes.
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err)
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.dir.join(file)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        self.handles.remove(file);
        match fs::remove_file(self.dir.join(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// MemStorage + fault plane
// ---------------------------------------------------------------------

/// An injectable crash point for [`MemStorage`]: the simulated machine
/// loses power after `after_bytes` further bytes have been appended
/// (across all files). The interrupted append keeps only the bytes
/// below the threshold — a *torn write*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Bytes of append traffic (counted from [`MemStorage::set_crash_plan`])
    /// admitted before the power cut. `0` crashes the very next append.
    pub after_bytes: u64,
    /// Whether unsynced appended bytes (including the torn partial append)
    /// make it to the platter. `false` models the page cache dying with
    /// the machine: only bytes covered by a completed
    /// [`Storage::sync`] survive into [`MemStorage::survivor`].
    pub keep_unsynced_tail: bool,
}

#[derive(Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Default)]
struct MemInner {
    files: BTreeMap<String, MemFile>,
    remaining: Option<u64>,
    keep_unsynced_tail: bool,
    crashed: bool,
}

/// Deterministic in-memory [`Storage`] with a crash-point / torn-write
/// fault plane, for the simulator and proptests. Cloning shares the
/// underlying files (a clone is another handle on the same "disk").
///
/// # Examples
///
/// ```
/// use esds_store::{CrashPlan, MemStorage, Storage, StoreError};
///
/// let mut disk = MemStorage::new();
/// disk.append("wal", b"abcd").unwrap();
/// disk.sync("wal").unwrap();
/// disk.set_crash_plan(CrashPlan { after_bytes: 2, keep_unsynced_tail: true });
/// assert_eq!(disk.append("wal", b"efgh"), Err(StoreError::Crashed));
/// // The synced prefix plus the torn two-byte tail survive.
/// let after = disk.survivor();
/// assert_eq!(after.read("wal").unwrap().unwrap(), b"abcdef");
/// ```
#[derive(Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty disk with no crash plan armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().expect("MemStorage lock poisoned")
    }

    /// Arms the crash point: after `plan.after_bytes` further appended
    /// bytes, the disk "loses power" mid-append and every subsequent
    /// operation returns [`StoreError::Crashed`].
    pub fn set_crash_plan(&self, plan: CrashPlan) {
        let mut g = self.lock();
        g.remaining = Some(plan.after_bytes);
        g.keep_unsynced_tail = plan.keep_unsynced_tail;
    }

    /// Whether the armed crash point has fired.
    pub fn is_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The disk image a restarted process would see: per file, the
    /// synced prefix — plus the unsynced tail if the plan kept it.
    /// The result is a fresh, healthy disk (no plan armed).
    pub fn survivor(&self) -> MemStorage {
        let g = self.lock();
        let files = g
            .files
            .iter()
            .map(|(name, f)| {
                let keep = if g.keep_unsynced_tail {
                    f.data.len()
                } else {
                    f.synced
                };
                (
                    name.clone(),
                    MemFile {
                        data: f.data[..keep].to_vec(),
                        synced: keep,
                    },
                )
            })
            .filter(|(_, f)| !f.data.is_empty())
            .collect();
        MemStorage {
            inner: Arc::new(Mutex::new(MemInner {
                files,
                ..MemInner::default()
            })),
        }
    }

    /// Flips every bit of one byte in `file` (bit-rot injection for
    /// corruption tests). Returns `false` if the offset is out of range.
    pub fn flip_byte(&self, file: &str, offset: usize) -> bool {
        let mut g = self.lock();
        match g.files.get_mut(file).and_then(|f| f.data.get_mut(offset)) {
            Some(b) => {
                *b ^= 0xff;
                true
            }
            None => false,
        }
    }

    /// Truncates `file` to `len` bytes (simulates a cut-short tail).
    /// Returns `false` if the file is missing or already shorter.
    pub fn truncate_file(&self, file: &str, len: usize) -> bool {
        let mut g = self.lock();
        match g.files.get_mut(file) {
            Some(f) if f.data.len() > len => {
                f.data.truncate(len);
                f.synced = f.synced.min(len);
                true
            }
            _ => false,
        }
    }
}

impl Storage for MemStorage {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut g = self.lock();
        if g.crashed {
            return Err(StoreError::Crashed);
        }
        let cut = match g.remaining {
            Some(rem) if bytes.len() as u64 >= rem => Some(rem as usize),
            _ => None,
        };
        let entry = g.files.entry(file.to_string()).or_default();
        match cut {
            Some(c) => {
                entry.data.extend_from_slice(&bytes[..c]);
                g.remaining = None;
                g.crashed = true;
                Err(StoreError::Crashed)
            }
            None => {
                entry.data.extend_from_slice(bytes);
                if let Some(rem) = &mut g.remaining {
                    *rem -= bytes.len() as u64;
                }
                Ok(())
            }
        }
    }

    fn sync(&mut self, file: &str) -> Result<(), StoreError> {
        let mut g = self.lock();
        if g.crashed {
            return Err(StoreError::Crashed);
        }
        let f = g.files.entry(file.to_string()).or_default();
        f.synced = f.data.len();
        Ok(())
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.lock().files.get(file).map(|f| f.data.clone()))
    }

    fn remove(&mut self, file: &str) -> Result<(), StoreError> {
        let mut g = self.lock();
        if g.crashed {
            return Err(StoreError::Crashed);
        }
        g.files.remove(file);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.lock().files.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_crash_point_tears_the_append() {
        let mut disk = MemStorage::new();
        disk.append("f", b"0123456789").unwrap();
        disk.sync("f").unwrap();
        disk.set_crash_plan(CrashPlan {
            after_bytes: 3,
            keep_unsynced_tail: false,
        });
        disk.append("f", b"ab").unwrap(); // 2 of 3 budget bytes
        assert_eq!(disk.append("f", b"cd"), Err(StoreError::Crashed));
        assert!(disk.is_crashed());
        assert_eq!(disk.sync("f"), Err(StoreError::Crashed));
        // Unsynced tail ("ab" + torn "c") is dropped: only the synced
        // prefix survives.
        let after = disk.survivor();
        assert_eq!(after.read("f").unwrap().unwrap(), b"0123456789");
    }

    #[test]
    fn mem_storage_keep_unsynced_tail_keeps_torn_bytes() {
        let mut disk = MemStorage::new();
        disk.set_crash_plan(CrashPlan {
            after_bytes: 5,
            keep_unsynced_tail: true,
        });
        assert_eq!(disk.append("f", b"0123456789"), Err(StoreError::Crashed));
        let after = disk.survivor();
        assert_eq!(after.read("f").unwrap().unwrap(), b"01234");
        // The survivor is healthy again.
        let mut after = after;
        after.append("f", b"!").unwrap();
        after.sync("f").unwrap();
    }

    #[test]
    fn mem_storage_crash_after_zero_bytes_fails_next_append() {
        let mut disk = MemStorage::new();
        disk.append("f", b"keep").unwrap();
        disk.sync("f").unwrap();
        disk.set_crash_plan(CrashPlan {
            after_bytes: 0,
            keep_unsynced_tail: true,
        });
        assert_eq!(disk.append("f", b"lost"), Err(StoreError::Crashed));
        assert_eq!(disk.survivor().read("f").unwrap().unwrap(), b"keep");
    }

    #[test]
    fn file_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!("esds-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.read("a").unwrap(), None);
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        s.sync("a").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(s.list().unwrap(), vec!["a".to_string()]);
        s.remove("a").unwrap();
        s.remove("a").unwrap(); // idempotent
        assert_eq!(s.read("a").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Durable-store integration tests: snapshot round-trips for all three
//! service datatypes (kv, directory, bank), checkpoint idempotence, and
//! the torn-tail / corruption / crash-point contracts.

use std::collections::BTreeSet;

use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};
use esds_datatypes::{Bank, BankOp, BankValue, Directory, DirectoryOp, KvOp, KvStore};
use esds_store::{
    CrashPlan, DurableConfig, DurableStore, MemStorage, RecoverReport, Storage, StoreError,
};

// ---------------------------------------------------------------------
// A minimal durable cluster driver (the threaded runtime in miniature):
// persist after every mutating handler, before effects are released.
// ---------------------------------------------------------------------

struct Node<T: SerialDataType> {
    rep: Replica<T>,
    store: DurableStore<T, MemStorage>,
    disk: MemStorage,
}

fn open_node<T>(
    dt: T,
    disk: MemStorage,
    id: u32,
    n: usize,
    cfg: DurableConfig,
) -> (Node<T>, RecoverReport)
where
    T: SerialDataType + Clone,
    T::Operator: esds_wire::Wire,
    T::Value: esds_wire::Wire,
    T::State: esds_wire::Wire,
{
    let (store, rep, report) = DurableStore::open(
        dt,
        disk.clone(),
        ReplicaId(id),
        n,
        ReplicaConfig::default(),
        cfg,
    )
    .expect("open");
    (Node { rep, store, disk }, report)
}

fn cluster<T>(dt: T, n: usize, cfg: DurableConfig) -> Vec<Node<T>>
where
    T: SerialDataType + Clone,
    T::Operator: esds_wire::Wire,
    T::Value: esds_wire::Wire,
    T::State: esds_wire::Wire,
{
    (0..n as u32)
        .map(|i| open_node(dt.clone(), MemStorage::new(), i, n, cfg).0)
        .collect()
}

fn request<T>(node: &mut Node<T>, d: OpDescriptor<T::Operator>) -> Vec<T::Value>
where
    T: SerialDataType + Clone,
    T::Operator: esds_wire::Wire,
    T::Value: esds_wire::Wire,
    T::State: esds_wire::Wire,
{
    let fx = node.rep.on_request(d);
    node.store.persist(&mut node.rep).expect("persist");
    fx.into_iter().map(|e| e.msg.value).collect()
}

fn gossip_round<T>(nodes: &mut [Node<T>])
where
    T: SerialDataType + Clone,
    T::Operator: esds_wire::Wire,
    T::Value: esds_wire::Wire,
    T::State: esds_wire::Wire,
{
    let n = nodes.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let to = nodes[j].rep.id();
            let g = nodes[i].rep.make_gossip(to);
            nodes[i].store.persist(&mut nodes[i].rep).expect("persist");
            let _fx = nodes[j].rep.on_gossip(g);
            nodes[j].store.persist(&mut nodes[j].rep).expect("persist");
        }
    }
}

fn checkpoint<T>(node: &mut Node<T>) -> bool
where
    T: SerialDataType + Clone,
    T::Operator: esds_wire::Wire,
    T::Value: esds_wire::Wire,
    T::State: esds_wire::Wire,
{
    node.store.checkpoint(&mut node.rep).expect("checkpoint")
}

fn id(client: u32, seq: u64) -> OpId {
    OpId::new(ClientId(client), seq)
}

/// All op ids a replica knows, whether memoized away or still in `rcvd`.
fn known_ids<T: SerialDataType>(rep: &Replica<T>) -> BTreeSet<OpId> {
    rep.memo_order()
        .iter()
        .copied()
        .chain(rep.rcvd().keys().copied())
        .collect()
}

// ---------------------------------------------------------------------
// Snapshot round-trips (kv, directory, bank)
// ---------------------------------------------------------------------

#[test]
fn snapshot_round_trip_kv() {
    let mut nodes = cluster(KvStore, 2, DurableConfig::wal_only());
    for (seq, op) in [
        KvOp::Put("a".into(), "1".into()),
        KvOp::Put("b".into(), "2".into()),
        KvOp::Remove("a".into()),
        KvOp::Put("c".into(), "3".into()),
    ]
    .into_iter()
    .enumerate()
    {
        request(&mut nodes[0], OpDescriptor::new(id(0, seq as u64), op));
        gossip_round(&mut nodes);
    }
    for _ in 0..3 {
        gossip_round(&mut nodes);
    }
    let want_state = nodes[0].rep.current_state();
    let want_order = nodes[0].rep.memo_order().to_vec();
    assert_eq!(want_state.get("b").map(String::as_str), Some("2"));
    assert!(checkpoint(&mut nodes[0]));

    let disk = nodes[0].disk.clone();
    let (restarted, report) = open_node(KvStore, disk, 0, 2, DurableConfig::wal_only());
    assert!(report.recovered);
    assert_eq!(report.snapshot_gen, Some(1));
    assert_eq!(restarted.rep.current_state(), want_state);
    assert_eq!(restarted.rep.memo_order(), &want_order[..]);
}

#[test]
fn snapshot_round_trip_directory() {
    let mut nodes = cluster(Directory, 2, DurableConfig::wal_only());
    for (seq, op) in [
        DirectoryOp::CreateName("svc".into()),
        DirectoryOp::SetAttr {
            name: "svc".into(),
            attr: "port".into(),
            value: "8080".into(),
        },
        DirectoryOp::CreateName("db".into()),
    ]
    .into_iter()
    .enumerate()
    {
        request(&mut nodes[0], OpDescriptor::new(id(0, seq as u64), op));
        gossip_round(&mut nodes);
    }
    for _ in 0..3 {
        gossip_round(&mut nodes);
    }
    let want_state = nodes[0].rep.current_state();
    assert_eq!(
        want_state
            .get("svc")
            .and_then(|m| m.get("port"))
            .map(String::as_str),
        Some("8080")
    );
    assert!(checkpoint(&mut nodes[0]));

    let disk = nodes[0].disk.clone();
    let (restarted, report) = open_node(Directory, disk, 0, 2, DurableConfig::wal_only());
    assert!(report.recovered);
    assert_eq!(restarted.rep.current_state(), want_state);
}

#[test]
fn snapshot_round_trip_bank_exact_balance() {
    let mut nodes = cluster(Bank, 2, DurableConfig::wal_only());
    for (seq, op) in [
        BankOp::Deposit(100),
        BankOp::Withdraw(30),   // admitted
        BankOp::Withdraw(1000), // rejected (insufficient funds)
        BankOp::Deposit(7),
    ]
    .into_iter()
    .enumerate()
    {
        request(&mut nodes[0], OpDescriptor::new(id(0, seq as u64), op));
        gossip_round(&mut nodes);
    }
    for _ in 0..3 {
        gossip_round(&mut nodes);
    }
    assert_eq!(nodes[0].rep.current_state(), 77);
    for node in nodes.iter_mut() {
        assert!(checkpoint(node));
    }

    // Restart the *whole* cluster from disk; both replicas re-enter via
    // the §9.3 gate, which closes after one full gossip exchange.
    let disks: Vec<MemStorage> = nodes.iter().map(|n| n.disk.clone()).collect();
    let mut nodes: Vec<Node<Bank>> = disks
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            let (node, report) = open_node(Bank, d, i as u32, 2, DurableConfig::wal_only());
            assert!(report.recovered, "replica {i} must recover from disk");
            node
        })
        .collect();
    assert!(nodes.iter().all(|n| n.rep.is_recovering()));
    gossip_round(&mut nodes);
    assert!(nodes.iter().all(|n| !n.rep.is_recovering()));

    // Balance is exact through snapshot + replay, via a fresh request.
    assert_eq!(nodes[0].rep.current_state(), 77);
    let values = request(&mut nodes[0], OpDescriptor::new(id(9, 0), BankOp::Balance));
    assert_eq!(values, vec![BankValue::Balance(77)]);
}

// ---------------------------------------------------------------------
// Checkpoint (durable compaction) idempotence
// ---------------------------------------------------------------------

#[test]
fn checkpoint_twice_is_checkpoint_once() {
    let mut nodes = cluster(KvStore, 2, DurableConfig::wal_only());
    for seq in 0..6u64 {
        request(
            &mut nodes[0],
            OpDescriptor::new(id(0, seq), KvOp::Put(format!("k{seq}"), format!("v{seq}"))),
        );
        gossip_round(&mut nodes);
    }
    // Leave an unstable suffix: one op that never gossips out.
    request(
        &mut nodes[0],
        OpDescriptor::new(id(0, 99), KvOp::Put("late".into(), "x".into())),
    );

    assert!(checkpoint(&mut nodes[0]));
    let gen1 = nodes[0].store.generation();
    let snap1 = nodes[0]
        .disk
        .read(&format!("snap-{gen1:010}.img"))
        .unwrap()
        .unwrap();
    let wal1 = nodes[0].disk.read(&format!("wal-{gen1:010}.log")).unwrap();

    assert!(checkpoint(&mut nodes[0]));
    let gen2 = nodes[0].store.generation();
    assert_eq!(gen2, gen1 + 1);
    let snap2 = nodes[0]
        .disk
        .read(&format!("snap-{gen2:010}.img"))
        .unwrap()
        .unwrap();
    let wal2 = nodes[0].disk.read(&format!("wal-{gen2:010}.log")).unwrap();

    // Same snapshot image, same re-logged suffix, old generation gone.
    assert_eq!(snap1, snap2);
    assert_eq!(wal1, wal2);
    let files = nodes[0].disk.list().unwrap();
    assert!(!files.contains(&format!("snap-{gen1:010}.img")));

    // And the recovered replica is identical either way. (Its
    // `current_state` excludes the unstable "late" op until the §9.3
    // gate closes — compare the durable knowledge, not the live view.)
    let (restarted, _) = open_node(
        KvStore,
        nodes[0].disk.clone(),
        0,
        2,
        DurableConfig::wal_only(),
    );
    assert_eq!(restarted.rep.memo_order(), nodes[0].rep.memo_order());
    assert_eq!(known_ids(&restarted.rep), known_ids(&nodes[0].rep));
}

// ---------------------------------------------------------------------
// Torn tails, corruption, crash points
// ---------------------------------------------------------------------

#[test]
fn torn_tail_is_dropped_with_a_diagnostic() {
    let (mut node, _) = open_node(KvStore, MemStorage::new(), 0, 1, DurableConfig::wal_only());
    for seq in 0..4u64 {
        request(
            &mut node,
            OpDescriptor::new(id(0, seq), KvOp::Put(format!("k{seq}"), "v".into())),
        );
    }
    let wal = "wal-0000000000.log";
    let len = node.disk.read(wal).unwrap().unwrap().len();
    assert!(node.disk.truncate_file(wal, len - 3));

    let (_, report) = open_node(KvStore, node.disk.clone(), 0, 1, DurableConfig::wal_only());
    assert!(report.recovered);
    assert_eq!(report.torn_tails.len(), 1, "torn tail must be reported");
    assert_eq!(report.torn_tails[0].0, wal);
    assert!(report.torn_tails[0].1 > 0);
    assert!(format!("{report}").contains("torn tail"));
}

#[test]
fn corrupt_record_is_refused_never_skipped() {
    let (mut node, _) = open_node(KvStore, MemStorage::new(), 0, 1, DurableConfig::wal_only());
    for seq in 0..4u64 {
        request(
            &mut node,
            OpDescriptor::new(id(0, seq), KvOp::Put(format!("k{seq}"), "v".into())),
        );
    }
    // Flip a byte inside the first record's *payload* (offset 12 is
    // where the payload starts, past the len+checksum header). A flip
    // in a length field may legitimately classify as a torn tail; a
    // payload flip must always be caught by the checksum.
    let wal = "wal-0000000000.log";
    assert!(node.disk.flip_byte(wal, 14));

    match DurableStore::<KvStore, _>::open(
        KvStore,
        node.disk.clone(),
        ReplicaId(0),
        1,
        ReplicaConfig::default(),
        DurableConfig::wal_only(),
    ) {
        Err(e @ StoreError::Corrupt { .. }) => {
            assert!(
                format!("{e}").contains(wal),
                "diagnostic names the file: {e}"
            );
        }
        Ok(_) => panic!("corrupt log must refuse recovery"),
        Err(e) => panic!("expected Corrupt, got {e}"),
    }
}

#[test]
fn crash_point_preserves_every_synced_op() {
    let (mut node, _) = open_node(
        KvStore,
        MemStorage::new(),
        0,
        1,
        DurableConfig {
            snapshot_every: Some(4),
        },
    );
    node.disk.set_crash_plan(CrashPlan {
        after_bytes: 700,
        keep_unsynced_tail: false,
    });

    let mut last_synced: BTreeSet<OpId> = BTreeSet::new();
    for seq in 0..200u64 {
        let d = OpDescriptor::new(id(0, seq), KvOp::Put(format!("k{seq}"), format!("v{seq}")));
        let _fx = node.rep.on_request(d);
        match node.store.persist(&mut node.rep) {
            Ok(()) => last_synced = known_ids(&node.rep),
            Err(_) => break, // power lost: the response above is dropped
        }
    }
    assert!(
        node.disk.is_crashed(),
        "the plan must fire within the workload"
    );
    assert!(!last_synced.is_empty());

    let (restarted, report) = open_node(
        KvStore,
        node.disk.survivor(),
        0,
        1,
        DurableConfig::default(),
    );
    assert!(report.recovered);
    assert_eq!(
        known_ids(&restarted.rep),
        last_synced,
        "exactly the acknowledged ops survive ({report})"
    );
}

#[test]
fn torn_snapshot_falls_back_to_previous_generation() {
    let (mut node, _) = open_node(KvStore, MemStorage::new(), 0, 1, DurableConfig::wal_only());
    for seq in 0..3u64 {
        request(
            &mut node,
            OpDescriptor::new(id(0, seq), KvOp::Put(format!("k{seq}"), "v".into())),
        );
    }
    assert!(node.store.checkpoint(&mut node.rep).unwrap());
    let want_state = node.rep.current_state();

    // Crash mid-write of the *second* snapshot: the torn snap survives
    // as a partial file, generation 1 is still intact.
    node.disk.set_crash_plan(CrashPlan {
        after_bytes: 10,
        keep_unsynced_tail: true,
    });
    assert!(node.store.checkpoint(&mut node.rep).is_err());

    let (restarted, report) = open_node(
        KvStore,
        node.disk.survivor(),
        0,
        1,
        DurableConfig::wal_only(),
    );
    assert!(report.recovered);
    assert_eq!(
        report.snapshot_gen,
        Some(1),
        "fell back past the torn snapshot"
    );
    assert_eq!(
        report.skipped_snapshots,
        vec!["snap-0000000002.img".to_string()]
    );
    assert_eq!(restarted.rep.current_state(), want_state);
}

#[test]
fn fresh_store_boots_an_active_replica() {
    let (node, report) = open_node(KvStore, MemStorage::new(), 0, 3, DurableConfig::default());
    assert!(!report.recovered);
    assert!(!node.rep.is_recovering());
    assert_eq!(format!("{report}"), "fresh store (no prior state)");
}

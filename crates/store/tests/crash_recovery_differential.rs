//! Crash-point differential property tests for the durable store.
//!
//! The sync-before-release discipline promises: **anything the replica
//! released (responses, gossip) is backed by synced log records**, so a
//! crash can only lose knowledge nobody was told about. These
//! properties check that end-to-end, Vbox-style, on random workloads ×
//! crash points × torn/truncated log tails:
//!
//! 1. **Recovery bounds + reconvergence**: a replica recovered from its
//!    surviving disk image knows *at least* every op whose persist
//!    call succeeded and *at most* what it knew at the power cut; after
//!    rejoining through the §9.3 gate, the cluster reconverges to one
//!    order that still extends the pre-crash stable-everywhere prefix
//!    (so no answered strict response is contradicted).
//! 2. **Truncation is torn, never corrupt**: any proper cut of a log's
//!    tail recovers a prefix of its records, reporting the dropped
//!    bytes as a diagnostic — never an error, never a silent skip.
//! 3. **Bit rot is never silently absorbed**: flipping one byte of a
//!    log never yields a clean full-count recovery — it is either
//!    refused as [`StoreError::Corrupt`] (with the file named) or
//!    surfaces as a reported torn tail (a flip in a frame's length
//!    field is indistinguishable from truncation, which is the honest
//!    classification).
//!
//! The acceptance bar for this suite is ≥ 256 cases (`PROPTEST_CASES`;
//! CI runs it at 512 in release mode).

use std::collections::BTreeSet;

use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId};
use esds_datatypes::{KvOp, KvStore};
use esds_store::{CrashPlan, DurableConfig, DurableStore, MemStorage, Storage, StoreError};
use proptest::prelude::*;

const N: usize = 3;

#[derive(Clone, Debug)]
struct Step {
    target: usize,
    key: u8,
    read: bool,
    strict: bool,
    gossip_after: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0..N as u32, 0..6u8, 0..4u8, 0..5u8, 0..2u8).prop_map(|(t, k, r, s, g)| Step {
        target: t as usize,
        key: k,
        read: r == 0,
        strict: s == 0,
        gossip_after: g == 0,
    })
}

fn op_of(step: &Step, seq: usize) -> KvOp {
    if step.read {
        KvOp::Get(format!("k{}", step.key))
    } else {
        KvOp::Put(format!("k{}", step.key), format!("v{seq}"))
    }
}

/// All op ids a replica knows, memoized or still in `rcvd`.
fn known_ids(rep: &Replica<KvStore>) -> BTreeSet<OpId> {
    rep.memo_order()
        .iter()
        .copied()
        .chain(rep.rcvd().keys().copied())
        .collect()
}

/// One gossip round over `alive` replicas (indices into `reps`),
/// persisting replica 0 through `store` when it participates.
fn gossip_round(
    reps: &mut [Replica<KvStore>],
    store: &mut Option<&mut DurableStore<KvStore, MemStorage>>,
    alive0: bool,
) -> Result<(), StoreError> {
    for from in 0..N {
        for to in 0..N {
            if from == to || (!alive0 && (from == 0 || to == 0)) {
                continue;
            }
            let g = reps[from].make_gossip(ReplicaId(to as u32));
            let _fx = reps[to].on_gossip(g);
            if to == 0 {
                if let Some(s) = store.as_deref_mut() {
                    s.persist(&mut reps[0])?;
                }
            }
        }
    }
    Ok(())
}

proptest! {
    /// Property 1: recovery bounds and reconvergence across a random
    /// crash point.
    #[test]
    fn crash_recovery_preserves_stable_prefix_and_reconverges(
        steps in proptest::collection::vec(step_strategy(), 5..25),
        crash_after in 0u64..2500,
        keep_unsynced in any::<bool>(),
        snapshot_every in prop_oneof![Just(None), (2u64..12).prop_map(Some)],
    ) {
        let disk = MemStorage::new();
        let (mut store, rep0, _) = DurableStore::open(
            KvStore,
            disk.clone(),
            ReplicaId(0),
            N,
            ReplicaConfig::default(),
            DurableConfig { snapshot_every },
        ).expect("fresh open");
        let mut reps: Vec<Replica<KvStore>> = vec![rep0];
        reps.extend((1..N as u32).map(|i| {
            Replica::new(KvStore, ReplicaId(i), N, ReplicaConfig::default())
        }));
        disk.set_crash_plan(CrashPlan {
            after_bytes: crash_after,
            keep_unsynced_tail: keep_unsynced,
        });

        // Run the workload; replica 0 persists after every handler and
        // "loses power" when the plan fires.
        let mut last_acked = BTreeSet::new();
        let mut at_crash = None;
        for (seq, s) in steps.iter().enumerate() {
            let target = if at_crash.is_some() && s.target == 0 { 1 } else { s.target };
            let d = OpDescriptor::new(OpId::new(ClientId(target as u32), seq as u64), op_of(s, seq))
                .with_strict(s.strict);
            let _fx = reps[target].on_request(d);
            if target == 0 {
                match store.persist(&mut reps[0]) {
                    Ok(()) => last_acked = known_ids(&reps[0]),
                    Err(_) => { at_crash = Some(known_ids(&reps[0])); }
                }
            }
            if s.gossip_after && at_crash.is_none() {
                let mut st = Some(&mut store);
                if gossip_round(&mut reps, &mut st, true).is_err() {
                    at_crash = Some(known_ids(&reps[0]));
                }
            } else if s.gossip_after {
                gossip_round(&mut reps, &mut None, false).expect("peers never crash");
            }
        }
        // A power cut between handlers if the plan never fired.
        let at_crash = at_crash.unwrap_or_else(|| {
            last_acked = known_ids(&reps[0]);
            known_ids(&reps[0])
        });
        // The position-final prefix (PR 6's fence): the longest *prefix*
        // of the label order that is stable everywhere. Ops stable out
        // of position are not final yet — an earlier-labeled op may
        // still slot in before them.
        let pre_crash_stable: Vec<OpId> = reps[0]
            .local_order()
            .into_iter()
            .take_while(|x| reps[0].stable_everywhere().contains(x))
            .collect();

        // Restart replica 0 from the surviving disk image.
        let survivor = disk.survivor();
        let (mut store, recovered, report) = DurableStore::open(
            KvStore,
            survivor,
            ReplicaId(0),
            N,
            ReplicaConfig::default(),
            DurableConfig { snapshot_every },
        ).expect("recovery must succeed (torn tails are tolerated)");
        let got = known_ids(&recovered);
        prop_assert!(
            got.is_superset(&last_acked),
            "lost an acknowledged op: acked {last_acked:?}, recovered {got:?} ({report})"
        );
        prop_assert!(
            got.is_subset(&at_crash),
            "resurrected an op the replica never knew: {got:?} vs {at_crash:?}"
        );

        // Rejoin and reconverge.
        reps[0] = recovered;
        let mut converged = false;
        for _ in 0..12 {
            let mut st = Some(&mut store);
            gossip_round(&mut reps, &mut st, true).expect("healthy disk");
            let order0 = reps[0].local_order();
            if !reps[0].is_recovering()
                && reps.iter().all(|r| r.local_order() == order0)
                && reps[0].stable_everywhere().len() == order0.len()
            {
                converged = true;
                break;
            }
        }
        prop_assert!(converged, "cluster failed to reconverge after recovery");
        let final_order = reps[0].local_order();
        prop_assert_eq!(
            &final_order[..pre_crash_stable.len()],
            &pre_crash_stable[..],
            "pre-crash stable-everywhere prefix was reordered"
        );
        for r in &reps[1..] {
            prop_assert_eq!(r.current_state(), reps[0].current_state(), "states diverged");
        }
    }

    /// Property 2: truncating a log at any byte recovers a prefix of its
    /// records with the torn tail reported, never an error.
    #[test]
    fn truncation_is_torn_never_corrupt(
        n_ops in 1usize..12,
        cut_permille in 0u64..=1000,
    ) {
        let disk = MemStorage::new();
        let (mut store, mut rep, _) = DurableStore::open(
            KvStore, disk.clone(), ReplicaId(0), 1,
            ReplicaConfig::default(), DurableConfig::wal_only(),
        ).expect("fresh open");
        for seq in 0..n_ops as u64 {
            let _fx = rep.on_request(OpDescriptor::new(
                OpId::new(ClientId(0), seq),
                KvOp::Put(format!("k{seq}"), format!("v{seq}")),
            ));
            store.persist(&mut rep).expect("healthy disk");
        }
        let full = known_ids(&rep);
        let wal = "wal-0000000000.log";
        let bytes = disk.read(wal).unwrap().unwrap();
        let len = bytes.len();
        // Frame boundaries of the intact log: a cut landing exactly on
        // one leaves a clean shorter log (indistinguishable from a
        // crash right after a sync) — any other cut must be reported
        // as a torn tail of exactly the leftover bytes.
        let mut boundaries = BTreeSet::from([0usize]);
        let mut pos = 0usize;
        while pos + 12 <= len {
            let flen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + flen;
            boundaries.insert(pos);
        }
        let cut = (len as u64 * cut_permille / 1000) as usize;
        disk.truncate_file(wal, cut);

        let (_, recovered, report) = DurableStore::open(
            KvStore, disk, ReplicaId(0), 1,
            ReplicaConfig::default(), DurableConfig::wal_only(),
        ).expect("truncation must never refuse recovery");
        let got = known_ids(&recovered);
        prop_assert!(got.is_subset(&full));
        let torn: usize = report.torn_tails.iter().map(|(_, b)| *b).sum();
        let clean_boundary = *boundaries.range(..=cut).next_back().unwrap();
        prop_assert_eq!(
            torn, cut - clean_boundary,
            "dropped bytes must be reported exactly: cut={} boundary={} ({})",
            cut, clean_boundary, report
        );
    }

    /// Property 3: a single flipped byte never yields a clean full-count
    /// recovery — it is refused with a named-file diagnostic, or (for
    /// length-field flips) surfaces as a reported torn tail.
    #[test]
    fn single_byte_flip_is_never_silently_absorbed(
        n_ops in 1usize..10,
        flip_permille in 0u64..1000,
    ) {
        let disk = MemStorage::new();
        let (mut store, mut rep, _) = DurableStore::open(
            KvStore, disk.clone(), ReplicaId(0), 1,
            ReplicaConfig::default(), DurableConfig::wal_only(),
        ).expect("fresh open");
        for seq in 0..n_ops as u64 {
            let _fx = rep.on_request(OpDescriptor::new(
                OpId::new(ClientId(0), seq),
                KvOp::Put(format!("k{seq}"), format!("v{seq}")),
            ));
            store.persist(&mut rep).expect("healthy disk");
        }
        let full = known_ids(&rep);
        let wal = "wal-0000000000.log";
        let len = disk.read(wal).unwrap().unwrap().len();
        let offset = ((len - 1) as u64 * flip_permille / 1000) as usize;
        prop_assert!(disk.flip_byte(wal, offset));

        match DurableStore::open(
            KvStore, disk, ReplicaId(0), 1,
            ReplicaConfig::default(), DurableConfig::wal_only(),
        ) {
            Err(e @ StoreError::Corrupt { .. }) => {
                prop_assert!(format!("{e}").contains(wal), "diagnostic names the file: {e}");
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok((_, recovered, report)) => {
                let clean = report.torn_tails.is_empty() && known_ids(&recovered) == full;
                prop_assert!(!clean, "one flipped byte at {offset} was silently absorbed");
            }
        }
    }
}

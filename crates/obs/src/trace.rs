//! Sampled op-lifecycle tracing: spans keyed by `(op id, stage)`
//! emitted as JSONL lines that coexist with the audit trace codec.
//!
//! Each sampled operation leaves a line per lifecycle stage it
//! crosses — submit → route → replica-accept → label → stabilize →
//! answer, plus the gather fan-out and NAK re-route side paths — so
//! one capture file can feed both the serializability checker (which
//! replays the `req`/`resp`/`stab` lines) and latency analysis (which
//! reads the `span` lines). The audit replayer skips event kinds it
//! does not know, which is what makes the formats composable.
//!
//! Line shape (stable, hand-rolled JSON like the audit codec):
//!
//! ```text
//! {"e":"span","shard":0,"id":"c1:7","stage":"submit","us":12345}
//! ```

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A lifecycle stage an operation crosses. Order in the enum is the
/// nominal order on the happy path; `GatherFanout` and `NakReroute`
/// are side paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Client handed the operation to the service.
    Submit,
    /// Client resolved the shard / replica to send it to.
    Route,
    /// A replica received and accepted the operation.
    ReplicaAccept,
    /// The operation got its (tentative) label in the eventual order.
    Label,
    /// The operation became stable everywhere (watermark crossed it).
    Stabilize,
    /// The client observed the response.
    Answer,
    /// A whole-object query fanned a sub-operation out to a shard.
    GatherFanout,
    /// A stale-table NAK re-routed the operation.
    NakReroute,
}

impl Stage {
    /// The stable wire name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::Route => "route",
            Stage::ReplicaAccept => "replica_accept",
            Stage::Label => "label",
            Stage::Stabilize => "stabilize",
            Stage::Answer => "answer",
            Stage::GatherFanout => "gather_fanout",
            Stage::NakReroute => "nak_reroute",
        }
    }
}

struct TracerInner {
    sink: Mutex<Box<dyn Write + Send>>,
    /// Keep 1 in `sample` operations (by id hash); 1 = everything.
    sample: u64,
    epoch: Instant,
}

/// A sampled span emitter. Cheap to clone (shares the sink); a
/// disabled tracer is a `None` and every call is a branch.
///
/// # Examples
///
/// ```
/// use esds_obs::{OpTracer, Stage};
/// let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
/// let tracer = OpTracer::to_shared_buffer(std::sync::Arc::clone(&buf), 1);
/// tracer.emit(0, "c1:7", Stage::Submit);
/// tracer.emit(0, "c1:7", Stage::Answer);
/// let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
/// assert!(text.lines().all(|l| l.starts_with("{\"e\":\"span\"")));
/// assert_eq!(text.lines().count(), 2);
/// ```
#[derive(Clone, Default)]
pub struct OpTracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for OpTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "OpTracer(disabled)"),
            Some(i) => write!(f, "OpTracer(sample=1/{})", i.sample),
        }
    }
}

impl OpTracer {
    /// The no-op tracer (the default everywhere).
    pub fn disabled() -> Self {
        OpTracer { inner: None }
    }

    /// Traces into an arbitrary writer, keeping 1 in `sample_one_in`
    /// operations (0 is treated as 1: keep everything).
    pub fn to_writer(w: Box<dyn Write + Send>, sample_one_in: u64) -> Self {
        OpTracer {
            inner: Some(Arc::new(TracerInner {
                sink: Mutex::new(w),
                sample: sample_one_in.max(1),
                epoch: Instant::now(),
            })),
        }
    }

    /// Traces into a shared byte buffer — handy for tests and for
    /// `esds_top`-style in-process capture.
    pub fn to_shared_buffer(buf: Arc<Mutex<Vec<u8>>>, sample_one_in: u64) -> Self {
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("trace buffer poisoned").write(b)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        OpTracer::to_writer(Box::new(SharedBuf(buf)), sample_one_in)
    }

    /// Traces into a file created at `path`.
    pub fn to_file(path: &std::path::Path, sample_one_in: u64) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(OpTracer::to_writer(
            Box::new(std::io::BufWriter::new(f)),
            sample_one_in,
        ))
    }

    /// Builds a tracer from the environment: `ESDS_OBS_TRACE=path`
    /// enables it, `ESDS_OBS_SAMPLE=n` keeps 1 in `n` ops (default 16).
    pub fn from_env() -> Self {
        let Ok(path) = std::env::var("ESDS_OBS_TRACE") else {
            return OpTracer::disabled();
        };
        if path.is_empty() {
            return OpTracer::disabled();
        }
        let sample = std::env::var("ESDS_OBS_SAMPLE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16);
        OpTracer::to_file(std::path::Path::new(&path), sample).unwrap_or_else(|_| {
            OpTracer::disabled() // unwritable path: trace off, service up
        })
    }

    /// Whether any spans are emitted at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the operation with this id is in the sample. All stages
    /// of one operation agree (the decision hashes only the id), so a
    /// sampled op's whole lifecycle is captured.
    pub fn sampled(&self, id: &str) -> bool {
        match &self.inner {
            None => false,
            Some(i) => fnv1a(id.as_bytes()).is_multiple_of(i.sample),
        }
    }

    /// Emits one span line if the op is sampled. `id` is the display
    /// form of the operation id (`c1:7`), matching the audit codec's
    /// id field.
    pub fn emit(&self, shard: u32, id: &str, stage: Stage) {
        let Some(i) = &self.inner else { return };
        if !fnv1a(id.as_bytes()).is_multiple_of(i.sample) {
            return;
        }
        let us = i.epoch.elapsed().as_micros() as u64;
        let line = format!(
            "{{\"e\":\"span\",\"shard\":{shard},\"id\":\"{id}\",\"stage\":\"{}\",\"us\":{us}}}\n",
            stage.name()
        );
        let mut sink = i.sink.lock().expect("trace sink poisoned");
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
    }
}

/// FNV-1a, the same cheap hash the wire frames use for checksums.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(sample: u64, ids: &[&str]) -> String {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let t = OpTracer::to_shared_buffer(Arc::clone(&buf), sample);
        for id in ids {
            t.emit(1, id, Stage::Submit);
            t.emit(1, id, Stage::Answer);
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text
    }

    #[test]
    fn disabled_emits_nothing() {
        let t = OpTracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sampled("c0:1"));
        t.emit(0, "c0:1", Stage::Submit); // must not panic
    }

    #[test]
    fn sample_one_keeps_everything_and_stages_pair_up() {
        let text = capture(1, &["c0:1", "c0:2", "c9:3"]);
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("\"stage\":\"submit\""));
        assert!(text.contains("\"stage\":\"answer\""));
    }

    #[test]
    fn sampling_is_consistent_per_id() {
        let ids: Vec<String> = (0..256).map(|i| format!("c{}:{}", i % 7, i)).collect();
        let id_refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
        let text = capture(8, &id_refs);
        // Each sampled id contributes exactly 2 lines (both stages or
        // neither — never a torn lifecycle).
        let mut per_id = std::collections::BTreeMap::new();
        for line in text.lines() {
            let id = line.split("\"id\":\"").nth(1).unwrap();
            let id = &id[..id.find('"').unwrap()];
            *per_id.entry(id.to_string()).or_insert(0u32) += 1;
        }
        assert!(!per_id.is_empty(), "1-in-8 of 256 ids keeps some");
        assert!(per_id.len() < 256, "1-in-8 drops most");
        assert!(per_id.values().all(|&c| c == 2));
    }

    #[test]
    fn stage_names_are_stable() {
        let all = [
            (Stage::Submit, "submit"),
            (Stage::Route, "route"),
            (Stage::ReplicaAccept, "replica_accept"),
            (Stage::Label, "label"),
            (Stage::Stabilize, "stabilize"),
            (Stage::Answer, "answer"),
            (Stage::GatherFanout, "gather_fanout"),
            (Stage::NakReroute, "nak_reroute"),
        ];
        for (s, n) in all {
            assert_eq!(s.name(), n);
        }
    }
}

//! The metrics registry: named counters, gauges, and bounded
//! histograms with hierarchical `shard/replica/metric` names.
//!
//! Design rules, in priority order:
//!
//! 1. **The hot path is lock-free.** Handles ([`Counter`], [`Gauge`],
//!    [`Histo`]) hold an `Arc` straight to the atomic; `inc`/`set`/
//!    `record` are single relaxed atomic ops. The registry's interior
//!    mutex is touched only at registration and snapshot time.
//! 2. **Disabled means free.** A [`MetricsRegistry::disabled`] registry
//!    hands out empty handles whose operations compile to a branch on
//!    `None` — no allocation, no atomics, no sharing. Every layer
//!    defaults to disabled, so deployments that never asked for
//!    metrics pay nothing (ratio-asserted by the facade's overhead
//!    smoke test and measured by `fig_obs_overhead`).
//! 3. **External sources plug in.** Subsystems that already keep their
//!    own atomics (the chaos proxy's drop/dup/reorder counters) are
//!    registered by handle, so snapshots read them live instead of
//!    copying.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{BoundedHistogram, HistogramSummary};

/// A monotonically increasing counter handle. Cheap to clone; a handle
/// from a disabled registry is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what disabled registries hand out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle (sizes, ages, generations).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (high-watermark use).
    pub fn set_max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A bounded-histogram handle (latencies in µs, sizes in bytes).
#[derive(Clone, Debug, Default)]
pub struct Histo(Option<Arc<BoundedHistogram>>);

impl Histo {
    /// A detached no-op histogram.
    pub fn noop() -> Self {
        Histo(None)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Whether this handle actually records (false when disabled).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<BoundedHistogram>>>,
}

/// The process-wide metrics registry. Clone freely — clones share the
/// same underlying store. See the module docs for the design rules.
///
/// # Examples
///
/// ```
/// use esds_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let c = reg.counter("shard0/replica1/requests");
/// c.inc();
/// c.add(2);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("shard0/replica1/requests"), Some(3));
///
/// let off = MetricsRegistry::disabled();
/// off.counter("anything").inc(); // free: no atomic exists
/// assert!(off.snapshot().counters.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The zero-cost disabled registry: every handle it hands out is a
    /// no-op, and [`MetricsRegistry::snapshot`] is empty.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-attaches to) the counter named `name`.
    /// Idempotent: the same name always resolves to the same atomic.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Registers an externally owned atomic as a counter source: the
    /// snapshot reads it live. Used for subsystems that already keep
    /// their own counters (e.g. the chaos proxy).
    pub fn counter_source(&self, name: &str, source: Arc<AtomicU64>) {
        if let Some(i) = &self.inner {
            i.counters
                .lock()
                .expect("metrics registry poisoned")
                .insert(name.to_string(), source);
        }
    }

    /// Registers (or re-attaches to) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Registers (or re-attaches to) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histo {
        Histo(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.hists
                    .lock()
                    .expect("metrics registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// A scope that prefixes every metric name with `prefix/`, the
    /// hierarchical naming convention (`shard{s}/replica{r}/…`).
    pub fn scoped(&self, prefix: impl Into<String>) -> Scope {
        Scope {
            reg: self.clone(),
            prefix: prefix.into(),
        }
    }

    /// A consistent point-in-time copy of every metric. Counters and
    /// gauges are exact; histogram summaries may trail concurrent
    /// recorders by in-flight samples.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(i) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = i
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = i
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = i
            .hists
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.summarize()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the current snapshot as text (see
    /// [`MetricsSnapshot::render`]).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// Renders the current snapshot as JSON (see
    /// [`MetricsSnapshot::render_json`]).
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// A name-prefixing view of a [`MetricsRegistry`]; see
/// [`MetricsRegistry::scoped`].
#[derive(Clone, Debug)]
pub struct Scope {
    reg: MetricsRegistry,
    prefix: String,
}

impl Scope {
    /// The counter `prefix/name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.reg.counter(&format!("{}/{name}", self.prefix))
    }

    /// The gauge `prefix/name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.reg.gauge(&format!("{}/{name}", self.prefix))
    }

    /// The histogram `prefix/name`.
    pub fn histogram(&self, name: &str) -> Histo {
        self.reg.histogram(&format!("{}/{name}", self.prefix))
    }

    /// An external counter source at `prefix/name`; see
    /// [`MetricsRegistry::counter_source`].
    pub fn counter_source(&self, name: &str, source: Arc<AtomicU64>) {
        self.reg
            .counter_source(&format!("{}/{name}", self.prefix), source);
    }

    /// A deeper scope `prefix/name`.
    pub fn scoped(&self, name: &str) -> Scope {
        self.reg.scoped(format!("{}/{name}", self.prefix))
    }

    /// Whether the underlying registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.reg.is_enabled()
    }
}

/// A point-in-time copy of a registry's metrics, sorted by name.
/// This is what crosses the wire in a `MetricsInfo` frame and what
/// `esds_top` renders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Sums every counter whose name ends with `/suffix` (or equals
    /// `suffix`) — e.g. total `gossip_bytes_out` across all peers of
    /// all replicas of all shards.
    pub fn counter_total(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n == suffix || n.ends_with(&format!("/{suffix}")))
            .map(|(_, v)| v)
            .sum()
    }

    /// Largest gauge whose name ends with `/suffix` (or equals it).
    pub fn gauge_max(&self, suffix: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(n, _)| n == suffix || n.ends_with(&format!("/{suffix}")))
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// Plain-text dump, one metric per line, sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge   {name} = {v}\n"));
        }
        for (name, s) in &self.histograms {
            out.push_str(&format!("hist    {name} = {}\n", s.render_us()));
        }
        out
    }

    /// JSON dump (hand-rolled: the workspace is offline, no serde).
    /// Shape: `{"counters": {..}, "gauges": {..}, "histograms":
    /// {name: {count, mean, p50, p95, p99, max}}}`.
    pub fn render_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut out);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut out);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut out);
            out.push_str(&format!(
                ": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_atom() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn disabled_is_empty_and_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(100);
        reg.gauge("g").set(7);
        reg.histogram("h").record(3);
        assert_eq!(c.get(), 0);
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
        assert_eq!(reg.render(), "");
    }

    #[test]
    fn scoped_names_nest() {
        let reg = MetricsRegistry::new();
        let shard = reg.scoped("shard3");
        let replica = shard.scoped("replica1");
        replica.counter("requests").inc();
        shard.gauge("watermark_age_ms").set(12);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shard3/replica1/requests"), Some(1));
        assert_eq!(snap.gauge("shard3/watermark_age_ms"), Some(12));
        assert_eq!(snap.counter_total("requests"), 1);
        assert_eq!(snap.gauge_max("watermark_age_ms"), 12);
    }

    #[test]
    fn external_source_read_live() {
        let reg = MetricsRegistry::new();
        let src = Arc::new(AtomicU64::new(0));
        reg.counter_source("chaos/dropped", Arc::clone(&src));
        src.store(9, Ordering::Relaxed);
        assert_eq!(reg.snapshot().counter("chaos/dropped"), Some(9));
    }

    #[test]
    fn render_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("a/b").add(2);
        reg.gauge("g").set(1);
        reg.histogram("h").record(10);
        let text = reg.render();
        assert!(text.contains("counter a/b = 2"));
        assert!(text.contains("gauge   g = 1"));
        assert!(text.contains("hist    h = n=1"));
        let json = reg.render_json();
        assert!(json.contains("\"a/b\": 2"));
        assert!(json.contains("\"count\": 1"));
    }
}

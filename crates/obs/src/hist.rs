//! Bounded log-bucketed histogram: fixed ~2 KiB of atomics per
//! histogram, lock-free recording, quantiles with a proven relative
//! error bound.
//!
//! The exact `esds-sim` histogram stores every sample, which is fine
//! for experiment-scale data but unbounded on a
//! long-lived service. This one buckets values logarithmically: each
//! power-of-two octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most a quarter of its lower bound (25% relative error). Quantiles
//! use the same nearest-rank rule as the exact histogram, which yields
//! the key differential property (proptested at the facade): **the
//! approximate quantile always falls in the same bucket as the exact
//! one** — see [`bucket_index`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per power-of-two octave (4 sub-buckets/octave).
pub const SUB_BITS: u32 = 2;
/// Linear sub-buckets per octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: `SUB_BUCKETS` exact low buckets plus
/// `SUB_BUCKETS` per octave from `2^SUB_BITS` through `2^63`.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket. Monotone non-decreasing in `v`, which
/// is what makes nearest-rank quantiles over bucket counts land in the
/// bucket containing the exact nearest-rank sample.
pub fn bucket_index(v: u64) -> usize {
    let bits = 64 - v.leading_zeros(); // bit length; 0 for v = 0
    if bits <= SUB_BITS {
        // 0..SUB_BUCKETS: one exact bucket per value.
        v as usize
    } else {
        let octave = bits - 1; // v ∈ [2^octave, 2^(octave+1))
        let sub = ((v >> (octave - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        SUB_BUCKETS + (octave - SUB_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        return (i as u64, i as u64);
    }
    let octave = SUB_BITS + ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + (width - 1))
}

/// A fixed-size, lock-free histogram of `u64` samples (latencies in
/// microseconds, sizes in bytes, …).
///
/// Memory is constant: `BUCKETS` (= 252) atomic counters ≈ 2 KiB, plus
/// exact count/sum/max. All updates are relaxed atomics — safe from
/// any number of threads, no locks on the record path.
///
/// # Examples
///
/// ```
/// use esds_obs::BoundedHistogram;
/// let h = BoundedHistogram::new();
/// for v in [10u64, 20, 30, 40, 50] {
///     h.record(v);
/// }
/// let s = h.summarize();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.max, 50);
/// // 30 lives in bucket [28, 31]: the quantile reports the bucket's
/// // value-capped upper bound.
/// assert!(s.p50 >= 30 && s.p50 <= 31);
/// ```
#[derive(Debug)]
pub struct BoundedHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for BoundedHistogram {
    fn default() -> Self {
        BoundedHistogram::new()
    }
}

impl BoundedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        BoundedHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Summarizes the current contents. Concurrent recorders may land
    /// between the bucket reads — each sample is still counted exactly
    /// once overall, and a quiescent histogram summarizes exactly.
    pub fn summarize(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let q = |p: f64| -> u64 {
            // Nearest rank, identical to the exact histogram's rule.
            let rank = (((p / 100.0) * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper bound of the bucket, capped at the true max:
                    // stays inside the bucket containing the exact
                    // quantile, and never over-reports the tail.
                    return bucket_bounds(i).1.min(max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            mean: sum / count,
            p50: q(50.0),
            p95: q(95.0),
            p99: q(99.0),
            max,
        }
    }
}

/// The rendered quantile summary of a [`BoundedHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (floor).
    pub mean: u64,
    /// Median (nearest-rank, bucket upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// One-line rendering shared by bench tables and `esds_top`:
    /// `n=5 mean=30µs p50=31µs p99=50µs max=50µs` (values are treated
    /// as microseconds).
    pub fn render_us(&self) -> String {
        format_latency_summary(self.count, self.mean, self.p50, self.p99, self.max)
    }
}

/// Formats a microsecond duration the way experiment tables do:
/// `17µs`, `4.2ms`, `1.37s`.
pub fn format_duration_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

/// The one-line latency summary format shared by the exact
/// (`esds-sim`) and bounded histograms, so bench bins don't duplicate
/// the string shape. All values in microseconds.
pub fn format_latency_summary(count: u64, mean: u64, p50: u64, p99: u64, max: u64) -> String {
    if count == 0 {
        return "n=0".to_string();
    }
    format!(
        "n={count} mean={} p50={} p99={} max={}",
        format_duration_us(mean),
        format_duration_us(p50),
        format_duration_us(p99),
        format_duration_us(max)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // Every bucket's bounds invert bucket_index, and consecutive
        // buckets tile without gap or overlap.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(
                lo, expected_lo,
                "bucket {i} starts where bucket {i}-1 ended"
            );
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket ends at u64::MAX");
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        for i in SUB_BUCKETS..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            // Bucket width ≤ lo / 4: ≤ 25% relative error at the
            // lower edge.
            assert!(hi - lo < lo / (SUB_BUCKETS as u64) + 1, "bucket {i}");
        }
    }

    #[test]
    fn fixed_footprint_is_about_2kib() {
        let per_hist = std::mem::size_of::<BoundedHistogram>();
        assert!(per_hist >= 2000, "buckets alone are ~2 KiB: {per_hist}");
        assert!(per_hist <= 2200, "fixed ~2 KiB budget: {per_hist}");
    }

    #[test]
    fn empty_summary() {
        let h = BoundedHistogram::new();
        assert_eq!(h.summarize(), HistogramSummary::default());
        assert_eq!(h.summarize().render_us(), "n=0");
    }

    #[test]
    fn quantiles_track_exact_values() {
        let h = BoundedHistogram::new();
        let mut samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let s = h.summarize();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, *samples.last().unwrap());
        for (p, got) in [(50.0, s.p50), (95.0, s.p95), (99.0, s.p99)] {
            let rank = (((p / 100.0) * 1000.0f64).ceil() as usize).clamp(1, 1000);
            let exact = samples[rank - 1];
            assert_eq!(
                bucket_index(got),
                bucket_index(exact),
                "p{p}: approx {got} must share a bucket with exact {exact}"
            );
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration_us(17), "17µs");
        assert_eq!(format_duration_us(4200), "4.2ms");
        assert_eq!(format_duration_us(1_370_000), "1.37s");
    }
}

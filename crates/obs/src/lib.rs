//! # esds-obs — observability for ESDS deployments
//!
//! The sensor layer the rest of the workspace reports into: a
//! lock-free [`MetricsRegistry`] (atomic counters, gauges, and
//! fixed-footprint log-bucketed histograms), and sampled
//! [op-lifecycle tracing](OpTracer) whose JSONL spans coexist with the
//! audit trace codec so one capture feeds both the serializability
//! checker and latency analysis.
//!
//! Everything defaults to **disabled and free**: a disabled registry
//! or tracer hands out handles whose operations are a predictable
//! branch — no atomics, no allocation, no locks — so services that
//! never asked for metrics pay nothing.
//!
//! ```
//! use esds_obs::MetricsRegistry;
//! let reg = MetricsRegistry::new();
//! let shard = reg.scoped("shard0");
//! shard.counter("requests").inc();
//! shard.gauge("unstable_window").set(3);
//! shard.histogram("wal_sync_us").record(180);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("shard0/requests"), Some(1));
//! assert!(snap.render().contains("shard0/wal_sync_us"));
//! ```

mod hist;
mod registry;
mod trace;

pub use hist::{
    bucket_bounds, bucket_index, format_duration_us, format_latency_summary, BoundedHistogram,
    HistogramSummary, BUCKETS, SUB_BITS, SUB_BUCKETS,
};
pub use registry::{Counter, Gauge, Histo, MetricsRegistry, MetricsSnapshot, Scope};
pub use trace::{OpTracer, Stage};

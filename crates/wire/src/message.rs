//! The algorithm's message set as framed wire payloads.
//!
//! [`WireMessage`] covers the three message sets of paper §6.1 plus two
//! transport-level extras: a connection [`Hello`](WireMessage::Hello)
//! preamble, and the [`SummarizedGossip`] variant implementing the §10.2
//! identifier summarization — `D` and `S` travel as [`IdSummary`]
//! watermark vectors instead of flat id lists.

use bytes::{Buf, BufMut, BytesMut};
use esds_alg::{BatchedGossipMsg, GossipMsg, RequestMsg, ResponseMsg};
use esds_core::{
    ClientId, IdSummary, Label, OpDescriptor, OpId, ReplicaId, RoutingTable, ShardedOpId,
};

use crate::codec::{get_u8, Wire};
use crate::error::WireError;
use crate::frame::{encode_frame, Frame, FrameKind};

/// Who is speaking on a freshly opened connection.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HelloId {
    /// A client front end.
    Client(ClientId),
    /// A peer replica (gossip connection).
    Replica(ReplicaId),
}

impl Wire for HelloId {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            HelloId::Client(c) => {
                buf.put_u8(0);
                c.encode(buf);
            }
            HelloId::Replica(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        match get_u8(buf, "HelloId")? {
            0 => Ok(HelloId::Client(ClientId::decode(buf)?)),
            1 => Ok(HelloId::Replica(ReplicaId::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                context: "HelloId",
                tag,
            }),
        }
    }
}

/// A gossip message with `D` and `S` carried as summaries (paper §10.2).
///
/// Lossless with respect to [`GossipMsg`]: [`SummarizedGossip::from_gossip`]
/// followed by [`SummarizedGossip::into_gossip`] yields a message with the
/// same sets (the `Vec` orderings are normalized to sorted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SummarizedGossip<O> {
    /// Sending replica.
    pub from: ReplicaId,
    /// `R`: operations the sender has received (descriptors are needed in
    /// full — `prev` and `strict` cannot be summarized away).
    pub rcvd: Vec<OpDescriptor<O>>,
    /// `D`: ids done at the sender, as a summary.
    pub done: IdSummary,
    /// `L`: the sender's minimum labels.
    pub labels: Vec<(OpId, Label)>,
    /// `S`: ids stable at the sender, as a summary.
    pub stable: IdSummary,
}

impl<O: Clone> SummarizedGossip<O> {
    /// Summarizes a plain gossip message.
    pub fn from_gossip(g: &GossipMsg<O>) -> Self {
        SummarizedGossip {
            from: g.from,
            rcvd: g.rcvd.clone(),
            done: g.done.iter().copied().collect(),
            labels: g.labels.clone(),
            stable: g.stable.iter().copied().collect(),
        }
    }

    /// Expands back to the plain representation the replica consumes.
    pub fn into_gossip(self) -> GossipMsg<O> {
        GossipMsg {
            from: self.from,
            rcvd: self.rcvd,
            done: self.done.iter().collect(),
            labels: self.labels,
            stable: self.stable.iter().collect(),
        }
    }

    /// Approximate wire size in bytes using the same per-entry estimates as
    /// [`GossipMsg::approx_bytes`], with `D`/`S` at their summary cost —
    /// the quantity compared by the `tab_id_summary` experiment.
    pub fn approx_bytes(&self) -> usize {
        let desc_bytes: usize = self.rcvd.iter().map(OpDescriptor::approx_bytes).sum();
        desc_bytes + self.done.approx_bytes() + 32 * self.labels.len() + self.stable.approx_bytes()
    }
}

impl<O: Wire> Wire for RequestMsg<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.desc.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(RequestMsg {
            desc: OpDescriptor::decode(buf)?,
        })
    }
}

impl<V: Wire> Wire for ResponseMsg<V> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.id.encode(buf);
        self.value.encode(buf);
        self.witness.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(ResponseMsg {
            id: OpId::decode(buf)?,
            value: V::decode(buf)?,
            witness: Option::decode(buf)?,
        })
    }
}

impl<O: Wire> Wire for GossipMsg<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.from.encode(buf);
        self.rcvd.encode(buf);
        self.done.encode(buf);
        self.labels.encode(buf);
        self.stable.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(GossipMsg {
            from: ReplicaId::decode(buf)?,
            rcvd: Vec::decode(buf)?,
            done: Vec::decode(buf)?,
            labels: Vec::decode(buf)?,
            stable: Vec::decode(buf)?,
        })
    }
}

impl<O: Wire> Wire for BatchedGossipMsg<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.from.encode(buf);
        self.rcvd.encode(buf);
        self.done.encode(buf);
        self.labels.encode(buf);
        self.stable.encode(buf);
        self.known.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(BatchedGossipMsg {
            from: ReplicaId::decode(buf)?,
            rcvd: Vec::decode(buf)?,
            done: IdSummary::decode(buf)?,
            labels: Vec::decode(buf)?,
            stable: IdSummary::decode(buf)?,
            known: IdSummary::decode(buf)?,
        })
    }
}

impl<O: Wire> Wire for SummarizedGossip<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.from.encode(buf);
        self.rcvd.encode(buf);
        self.done.encode(buf);
        self.labels.encode(buf);
        self.stable.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(SummarizedGossip {
            from: ReplicaId::decode(buf)?,
            rcvd: Vec::decode(buf)?,
            done: IdSummary::decode(buf)?,
            labels: Vec::decode(buf)?,
            stable: IdSummary::decode(buf)?,
        })
    }
}

/// A sharded-deployment request (client → a shard's relay replica).
///
/// Carries the client's **global** identifier alongside the per-shard
/// descriptor, plus the [`RoutingTable`] version the client routed the
/// operation under — the routing-table-version handshake. A node whose
/// deployment is at a different version refuses the descriptor (it never
/// reaches the replica state machine) and answers with
/// [`ShardedResponseMsg::Nak`] carrying the authoritative table, so a
/// stale client re-routes instead of reading or writing the wrong shard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedRequestMsg<O> {
    /// The routing-table version the sender routed under.
    pub version: u64,
    /// The operation's identity in the service-global namespace.
    pub global: ShardedOpId,
    /// The per-shard descriptor (local id, operator, same-shard `prev`,
    /// strictness) handed to the shard's protocol if the version matches.
    pub desc: OpDescriptor<O>,
}

impl<O: Wire> Wire for ShardedRequestMsg<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.version.encode(buf);
        self.global.encode(buf);
        self.desc.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(ShardedRequestMsg {
            version: u64::decode(buf)?,
            global: ShardedOpId::decode(buf)?,
            desc: OpDescriptor::decode(buf)?,
        })
    }
}

/// A sharded-deployment response (a shard's relay replica → client).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShardedResponseMsg<V> {
    /// The operation was accepted and answered by its shard.
    Ok {
        /// The service-global identity the request carried.
        global: ShardedOpId,
        /// The shard-local response (local id, value, optional witness).
        resp: ResponseMsg<V>,
    },
    /// Version-mismatch NAK: the request was **refused** before reaching
    /// the replica (nothing was applied). The authoritative table rides
    /// along so the client can adopt it and re-route.
    Nak {
        /// The refused operation.
        global: ShardedOpId,
        /// The deployment's current routing table.
        table: RoutingTable,
    },
}

impl<V: Wire> Wire for ShardedResponseMsg<V> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ShardedResponseMsg::Ok { global, resp } => {
                buf.put_u8(0);
                global.encode(buf);
                resp.encode(buf);
            }
            ShardedResponseMsg::Nak { global, table } => {
                buf.put_u8(1);
                global.encode(buf);
                table.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        match get_u8(buf, "ShardedResponseMsg")? {
            0 => Ok(ShardedResponseMsg::Ok {
                global: ShardedOpId::decode(buf)?,
                resp: ResponseMsg::decode(buf)?,
            }),
            1 => Ok(ShardedResponseMsg::Nak {
                global: ShardedOpId::decode(buf)?,
                table: RoutingTable::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag {
                context: "ShardedResponseMsg",
                tag,
            }),
        }
    }
}

/// A replica's stability knowledge, answered to a
/// [`WireMessage::StabilityQuery`] — the wire form of the node's
/// `StabilitySnapshot`. A barrier-strict gathered query snapshots the
/// relay's `order` as the shard's answered frontier and polls until
/// `stable_everywhere` covers it (see `esds_wire::ShardedWireClient`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StabilityInfoMsg {
    /// The replica's local label order (ids only).
    pub order: Vec<OpId>,
    /// Operations the replica knows are stable at every replica.
    pub stable_everywhere: Vec<OpId>,
}

impl Wire for StabilityInfoMsg {
    fn encode(&self, buf: &mut impl BufMut) {
        self.order.encode(buf);
        self.stable_everywhere.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(StabilityInfoMsg {
            order: Vec::decode(buf)?,
            stable_everywhere: Vec::decode(buf)?,
        })
    }
}

impl Wire for esds_obs::HistogramSummary {
    fn encode(&self, buf: &mut impl BufMut) {
        self.count.encode(buf);
        self.mean.encode(buf);
        self.p50.encode(buf);
        self.p95.encode(buf);
        self.p99.encode(buf);
        self.max.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(esds_obs::HistogramSummary {
            count: u64::decode(buf)?,
            mean: u64::decode(buf)?,
            p50: u64::decode(buf)?,
            p95: u64::decode(buf)?,
            p99: u64::decode(buf)?,
            max: u64::decode(buf)?,
        })
    }
}

impl Wire for esds_obs::MetricsSnapshot {
    fn encode(&self, buf: &mut impl BufMut) {
        self.counters.encode(buf);
        self.gauges.encode(buf);
        self.histograms.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(esds_obs::MetricsSnapshot {
            counters: Vec::decode(buf)?,
            gauges: Vec::decode(buf)?,
            histograms: Vec::decode(buf)?,
        })
    }
}

/// Any message the transport can carry, tagged by [`FrameKind`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireMessage<O, V> {
    /// Front end → replica.
    Request(RequestMsg<O>),
    /// Replica → front end.
    Response(ResponseMsg<V>),
    /// Replica → replica, plain encoding.
    Gossip(GossipMsg<O>),
    /// Replica → replica, §10.2 summarized encoding.
    GossipSummary(SummarizedGossip<O>),
    /// Replica → replica, §10.4 batched exchange (deltas + watermark
    /// handshake).
    GossipBatched(BatchedGossipMsg<O>),
    /// Connection preamble.
    Hello(HelloId),
    /// Sharded client → shard relay replica (global id + table version).
    ShardedRequest(ShardedRequestMsg<O>),
    /// Shard relay replica → sharded client (answer or version NAK).
    ShardedResponse(ShardedResponseMsg<V>),
    /// Client → replica: probe stability knowledge (no payload).
    StabilityQuery,
    /// Replica → client: the probed stability knowledge.
    StabilityInfo(StabilityInfoMsg),
    /// Client → node: request the process-wide metrics snapshot (no
    /// payload).
    MetricsQuery,
    /// Node → client: the registry snapshot at query time.
    MetricsInfo(esds_obs::MetricsSnapshot),
}

/// Encodes a message as a complete frame appended to `out`.
pub fn encode_message<O: Wire, V: Wire>(msg: &WireMessage<O, V>, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    let kind = match msg {
        WireMessage::Request(m) => {
            m.encode(&mut payload);
            FrameKind::Request
        }
        WireMessage::Response(m) => {
            m.encode(&mut payload);
            FrameKind::Response
        }
        WireMessage::Gossip(m) => {
            m.encode(&mut payload);
            FrameKind::Gossip
        }
        WireMessage::GossipSummary(m) => {
            m.encode(&mut payload);
            FrameKind::GossipSummary
        }
        WireMessage::GossipBatched(m) => {
            m.encode(&mut payload);
            FrameKind::GossipBatched
        }
        WireMessage::Hello(h) => {
            h.encode(&mut payload);
            FrameKind::Hello
        }
        WireMessage::ShardedRequest(m) => {
            m.encode(&mut payload);
            FrameKind::ShardedRequest
        }
        WireMessage::ShardedResponse(m) => {
            m.encode(&mut payload);
            FrameKind::ShardedResponse
        }
        WireMessage::StabilityQuery => FrameKind::StabilityQuery,
        WireMessage::StabilityInfo(m) => {
            m.encode(&mut payload);
            FrameKind::StabilityInfo
        }
        WireMessage::MetricsQuery => FrameKind::MetricsQuery,
        WireMessage::MetricsInfo(m) => {
            m.encode(&mut payload);
            FrameKind::MetricsInfo
        }
    };
    encode_frame(kind, &payload, out);
}

/// Decodes a checksum-verified frame into a message.
///
/// # Errors
///
/// Returns [`WireError`] if the payload is malformed for the frame's kind.
pub fn decode_message<O: Wire, V: Wire>(frame: &Frame) -> Result<WireMessage<O, V>, WireError> {
    let mut buf = frame.payload.clone();
    let msg = match frame.kind {
        FrameKind::Request => WireMessage::Request(RequestMsg::decode(&mut buf)?),
        FrameKind::Response => WireMessage::Response(ResponseMsg::decode(&mut buf)?),
        FrameKind::Gossip => WireMessage::Gossip(GossipMsg::decode(&mut buf)?),
        FrameKind::GossipSummary => WireMessage::GossipSummary(SummarizedGossip::decode(&mut buf)?),
        FrameKind::GossipBatched => WireMessage::GossipBatched(BatchedGossipMsg::decode(&mut buf)?),
        FrameKind::Hello => WireMessage::Hello(HelloId::decode(&mut buf)?),
        FrameKind::ShardedRequest => {
            WireMessage::ShardedRequest(ShardedRequestMsg::decode(&mut buf)?)
        }
        FrameKind::ShardedResponse => {
            WireMessage::ShardedResponse(ShardedResponseMsg::decode(&mut buf)?)
        }
        FrameKind::StabilityQuery => WireMessage::StabilityQuery,
        FrameKind::StabilityInfo => WireMessage::StabilityInfo(StabilityInfoMsg::decode(&mut buf)?),
        FrameKind::MetricsQuery => WireMessage::MetricsQuery,
        FrameKind::MetricsInfo => {
            WireMessage::MetricsInfo(esds_obs::MetricsSnapshot::decode(&mut buf)?)
        }
    };
    if buf.has_remaining() {
        return Err(WireError::InvalidTag {
            context: "trailing",
            tag: buf.chunk()[0],
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_frame;
    use esds_datatypes::{CounterOp, CounterValue};

    type Msg = WireMessage<CounterOp, CounterValue>;

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    fn roundtrip(msg: Msg) {
        let mut buf = BytesMut::new();
        encode_message(&msg, &mut buf);
        let frame = decode_frame(&mut buf).unwrap().unwrap();
        let back: Msg = decode_message(&frame).unwrap();
        assert_eq!(back, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(Msg::Request(RequestMsg {
            desc: OpDescriptor::new(id(0, 0), CounterOp::Increment(5))
                .with_prev([id(1, 3)])
                .with_strict(true),
        }));
    }

    #[test]
    fn response_roundtrip() {
        roundtrip(Msg::Response(ResponseMsg {
            id: id(2, 9),
            value: CounterValue::Count(-4),
            witness: Some(vec![id(0, 0), id(2, 9)]),
        }));
    }

    #[test]
    fn gossip_roundtrip() {
        roundtrip(Msg::Gossip(GossipMsg {
            from: ReplicaId(1),
            rcvd: vec![OpDescriptor::new(id(0, 0), CounterOp::Double)],
            done: vec![id(0, 0)],
            labels: vec![(id(0, 0), Label::new(1, ReplicaId(1)))],
            stable: vec![],
        }));
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Msg::Hello(HelloId::Replica(ReplicaId(2))));
        roundtrip(Msg::Hello(HelloId::Client(ClientId(77))));
    }

    #[test]
    fn sharded_request_roundtrip() {
        roundtrip(Msg::ShardedRequest(ShardedRequestMsg {
            version: 3,
            global: ShardedOpId::new(ClientId(4), 17),
            desc: OpDescriptor::new(id(4, 2), CounterOp::Increment(-9))
                .with_prev([id(4, 1)])
                .with_strict(true),
        }));
    }

    #[test]
    fn sharded_response_roundtrip() {
        roundtrip(Msg::ShardedResponse(ShardedResponseMsg::Ok {
            global: ShardedOpId::new(ClientId(1), 0),
            resp: ResponseMsg {
                id: id(1, 0),
                value: CounterValue::Count(12),
                witness: Some(vec![id(0, 0), id(1, 0)]),
            },
        }));
        let mut table = RoutingTable::uniform(2);
        table.apply(&esds_core::MigrationPlan::add_shard(&table));
        roundtrip(Msg::ShardedResponse(ShardedResponseMsg::Nak {
            global: ShardedOpId::new(ClientId(1), 5),
            table,
        }));
    }

    #[test]
    fn stability_roundtrip() {
        roundtrip(Msg::StabilityQuery);
        roundtrip(Msg::StabilityInfo(StabilityInfoMsg {
            order: vec![id(0, 0), id(1, 3), id(0, 1)],
            stable_everywhere: vec![id(0, 0), id(1, 3)],
        }));
        roundtrip(Msg::StabilityInfo(StabilityInfoMsg {
            order: vec![],
            stable_everywhere: vec![],
        }));
    }

    #[test]
    fn metrics_roundtrip() {
        roundtrip(Msg::MetricsQuery);
        roundtrip(Msg::MetricsInfo(esds_obs::MetricsSnapshot::default()));
        let reg = esds_obs::MetricsRegistry::new();
        reg.counter("shard0/replica1/requests").add(7);
        reg.gauge("shard0/watermark_age_ms").set(42);
        for v in [3u64, 900, 15_000] {
            reg.histogram("shard0/replica0/wal/sync_us").record(v);
        }
        roundtrip(Msg::MetricsInfo(reg.snapshot()));
    }

    #[test]
    fn summary_gossip_is_lossless() {
        let g = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![OpDescriptor::new(id(0, 2), CounterOp::Read)],
            done: (0..50)
                .map(|s| id(0, s))
                .chain((0..30).map(|s| id(1, s)))
                .collect(),
            labels: vec![(id(0, 0), Label::new(3, ReplicaId(0)))],
            stable: (0..49).map(|s| id(0, s)).collect(),
        };
        let s = SummarizedGossip::from_gossip(&g);
        roundtrip(Msg::GossipSummary(s.clone()));
        let back = s.clone().into_gossip();
        assert_eq!(back.from, g.from);
        assert_eq!(back.rcvd, g.rcvd);
        let mut done = g.done.clone();
        done.sort();
        assert_eq!(back.done, done);
        let mut stable = g.stable.clone();
        stable.sort();
        assert_eq!(back.stable, stable);
    }

    #[test]
    fn batched_gossip_roundtrip() {
        roundtrip(Msg::GossipBatched(BatchedGossipMsg {
            from: ReplicaId(2),
            rcvd: vec![OpDescriptor::new(id(0, 2), CounterOp::Increment(3)).with_prev([id(0, 1)])],
            done: IdSummary::from_ids((0..40).map(|s| id(0, s))),
            labels: vec![(id(0, 2), Label::new(7, ReplicaId(2)))],
            stable: IdSummary::from_ids((0..39).map(|s| id(0, s))),
            known: IdSummary::from_ids([id(0, 0), id(0, 1), id(0, 2), id(1, 5)]),
        }));
    }

    #[test]
    fn batched_wire_encoding_stays_compact_on_dense_history() {
        // Same 1000-id history as summary_shrinks_dense_gossip: a batched
        // steady-state exchange (no deltas, summaries + handshake only)
        // encodes orders of magnitude below the snapshot.
        let ids: IdSummary = (0..4)
            .flat_map(|c| (0..250).map(move |s| id(c, s)))
            .collect();
        let b: BatchedGossipMsg<CounterOp> = BatchedGossipMsg {
            from: ReplicaId(0),
            rcvd: vec![],
            done: ids.clone(),
            labels: vec![],
            stable: ids.clone(),
            known: ids.clone(),
        };
        let g: GossipMsg<CounterOp> = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![],
            done: ids.iter().collect(),
            labels: vec![],
            stable: ids.iter().collect(),
        };
        let batched_len = {
            let mut buf = BytesMut::new();
            encode_message::<_, CounterValue>(&Msg::GossipBatched(b), &mut buf);
            buf.len()
        };
        let plain_len = {
            let mut buf = BytesMut::new();
            encode_message::<_, CounterValue>(&Msg::Gossip(g), &mut buf);
            buf.len()
        };
        assert!(batched_len * 20 < plain_len, "{batched_len} vs {plain_len}");
    }

    #[test]
    fn summary_shrinks_dense_gossip() {
        // 1000 done ids from 4 clients: flat list ≈ 16 kB, summary ≈ 48 B.
        let done: Vec<OpId> = (0..4)
            .flat_map(|c| (0..250).map(move |s| id(c, s)))
            .collect();
        let g: GossipMsg<CounterOp> = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![],
            done,
            labels: vec![],
            stable: vec![],
        };
        let s = SummarizedGossip::from_gossip(&g);
        assert!(
            s.approx_bytes() * 50 < g.approx_bytes(),
            "summary {} vs plain {}",
            s.approx_bytes(),
            g.approx_bytes()
        );
        // And the real encodings agree with the estimate's direction.
        let plain_len = {
            let mut b = BytesMut::new();
            encode_message::<_, CounterValue>(&Msg::Gossip(g), &mut b);
            b.len()
        };
        let summary_len = {
            let mut b = BytesMut::new();
            encode_message::<_, CounterValue>(&Msg::GossipSummary(s), &mut b);
            b.len()
        };
        assert!(summary_len * 20 < plain_len, "{summary_len} vs {plain_len}");
    }
}

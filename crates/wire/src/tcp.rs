//! A TCP deployment of the data service.
//!
//! The paper's experimental system (§11.1) ran replicas on a network of
//! Unix workstations with MPI carrying requests, responses, and gossip.
//! This module is the equivalent deployment for this reproduction: each
//! [`TcpReplicaNode`] hosts one [`esds_alg::Replica`] state machine behind
//! a TCP listener; peers hold long-lived gossip connections to each other;
//! clients drive an [`esds_alg::FrontEnd`] over [`TcpClient`].
//!
//! Design notes:
//!
//! * **Same state machines as the simulator.** The node threads only move
//!   framed bytes; every protocol decision lives in `esds-alg`, so the
//!   safety results validated under the simulator carry over.
//! * **Connection loss is message loss.** The algorithm tolerates lost and
//!   duplicated messages (paper §9.3), so a dropped gossip connection is
//!   simply re-dialed at the next gossip tick, and front ends re-send
//!   pending requests (footnote 3 of the paper).
//! * **Corrupt frames kill the connection**, not the node — see
//!   [`crate::frame`] on why corruption must not be absorbed.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use esds_alg::{
    FrontEnd, GossipEnvelope, Persistence, RecoveryStub, RelayPolicy, Replica, ReplicaConfig,
    RequestMsg,
};
use esds_core::{ClientId, OpId, ReplicaId, RoutingTable, SerialDataType, ShardedOpId};
use esds_obs::Stage;
use parking_lot::Mutex;

/// The cluster's address table, shared by nodes and clients. Restarting a
/// crashed node rebinds it to a fresh ephemeral port and updates its slot,
/// so peers and clients redial through the table rather than holding stale
/// addresses.
pub type AddrTable = Arc<Mutex<Vec<SocketAddr>>>;

use crate::codec::Wire;
use crate::frame::decode_frame;
use crate::message::{
    decode_message, encode_message, HelloId, ShardedResponseMsg, StabilityInfoMsg,
    SummarizedGossip, WireMessage,
};

/// Read-poll granularity: how often blocked readers check for shutdown.
const POLL: Duration = Duration::from_millis(25);

/// Configuration of a TCP cluster.
#[derive(Clone, Debug)]
pub struct TcpClusterConfig {
    /// Number of replica nodes.
    pub n_replicas: usize,
    /// Gossip tick interval per node.
    pub gossip_interval: Duration,
    /// Encode gossip with §10.2 id summaries ([`SummarizedGossip`]).
    pub summarized_gossip: bool,
    /// Replica state-machine configuration.
    pub replica: ReplicaConfig,
    /// Observability plumbing (registry, prefix, tracer). Defaults to
    /// fully disabled — zero cost unless a registry is installed.
    pub obs: NodeObs,
}

impl TcpClusterConfig {
    /// Defaults: 5 ms gossip, plain gossip encoding, metrics disabled.
    pub fn new(n_replicas: usize) -> Self {
        TcpClusterConfig {
            n_replicas,
            gossip_interval: Duration::from_millis(5),
            summarized_gossip: false,
            replica: ReplicaConfig::default(),
            obs: NodeObs::default(),
        }
    }

    /// Enables the summarized gossip encoding.
    #[must_use]
    pub fn with_summarized_gossip(mut self) -> Self {
        self.summarized_gossip = true;
        self
    }

    /// Installs a metrics registry (and optionally a tracer) for every
    /// node spawned under this config.
    #[must_use]
    pub fn with_obs(mut self, obs: NodeObs) -> Self {
        self.obs = obs;
        self
    }
}

/// The observability plumbing a node carries: the **process-wide**
/// registry it reports into (and answers [`WireMessage::MetricsQuery`]
/// frames from), the node's hierarchical metric prefix, the shard
/// index stamped on trace spans, and the sampled lifecycle tracer.
///
/// Default is everything disabled: handles are no-ops and queries
/// answer an empty snapshot.
#[derive(Clone, Debug, Default)]
pub struct NodeObs {
    /// Registry the node's counters, gauges, and histograms live in.
    pub registry: esds_obs::MetricsRegistry,
    /// Hierarchical name prefix, e.g. `shard0` (empty for unsharded
    /// deployments: metrics are named `replica{r}/…` directly).
    pub prefix: String,
    /// Shard index stamped on lifecycle trace spans.
    pub shard: u32,
    /// Sampled op-lifecycle tracer.
    pub tracer: esds_obs::OpTracer,
}

impl NodeObs {
    /// Observability for an unsharded deployment: all nodes report
    /// into `registry`, trace spans carry shard 0.
    pub fn with_registry(registry: esds_obs::MetricsRegistry) -> Self {
        NodeObs {
            registry,
            ..NodeObs::default()
        }
    }

    /// The node-level scope (`[prefix/]replica{r}`) for replica `id`.
    pub fn replica_scope(&self, id: ReplicaId) -> esds_obs::Scope {
        if self.prefix.is_empty() {
            self.registry.scoped(format!("replica{}", id.0))
        } else {
            self.registry
                .scoped(format!("{}/replica{}", self.prefix, id.0))
        }
    }
}

enum NodeInput<T: SerialDataType> {
    Request(RequestMsg<T::Operator>),
    Gossip(GossipEnvelope<T::Operator>),
    Inspect(Sender<StabilitySnapshot>),
    Shutdown,
}

/// A replica's stability knowledge at one instant: its local label
/// order and the set it knows to be stable at every replica. The
/// allocation-light probe an audit watermark poll needs — operator
/// payloads and label maps stay on the node.
#[derive(Clone, Debug)]
pub struct StabilitySnapshot {
    /// The node's local label order (ids only).
    pub order: Vec<OpId>,
    /// `∩ᵢ stable_r[i]` — operations the node knows are stable
    /// everywhere; within [`StabilitySnapshot::order`] these form its
    /// solid prefix.
    pub stable_everywhere: std::collections::BTreeSet<OpId>,
}

/// What makes a replica node **shard-aware**: the deployment's shared
/// routing table (the authority for the version handshake) and the
/// shard's `local id → global id` map, filled in as `ShardedRequest`
/// frames are accepted and consulted when responses go out (a mapped
/// operation is answered with a `ShardedResponse::Ok` carrying its
/// global identity; unmapped ones keep the plain `Response` encoding).
#[derive(Clone)]
pub(crate) struct ShardCtx {
    pub(crate) table: Arc<Mutex<RoutingTable>>,
    pub(crate) globals: Arc<Mutex<HashMap<OpId, ShardedOpId>>>,
}

/// One replica server: a listener, reader threads, and the core thread
/// driving the replica state machine and the gossip timer.
pub struct TcpReplicaNode<T: SerialDataType> {
    id: ReplicaId,
    addr: SocketAddr,
    input_tx: Sender<NodeInput<T>>,
    core: Option<JoinHandle<Replica<T>>>,
    acceptor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl<T> TcpReplicaNode<T>
where
    T: SerialDataType + Send + 'static,
    T::Operator: Wire + Send,
    T::Value: Wire + Send,
    T::State: Send,
{
    /// Spawns a node for replica `id` of `n`, listening on `listener`,
    /// gossiping to the peers in `addrs` (index = replica id; own entry
    /// ignored).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read or threads
    /// cannot be spawned.
    pub fn spawn(
        dt: T,
        id: ReplicaId,
        listener: TcpListener,
        addrs: AddrTable,
        config: &TcpClusterConfig,
    ) -> Self {
        let rep = Replica::new(dt, id, config.n_replicas, config.replica);
        Self::spawn_node(rep, listener, addrs, config, None, None)
    }

    /// Spawns a **durable** node over a pre-built replica and its
    /// persistence backend — the restart-from-disk entry point: open the
    /// replica's store (recovering whatever survives on disk), then hand
    /// the recovered replica here. Every mutating input is persisted
    /// (synced) before its response or gossip leaves the node; a persist
    /// failure stops the core thread, exactly as if the machine had lost
    /// power.
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read or threads
    /// cannot be spawned.
    pub fn spawn_durable(
        rep: Replica<T>,
        store: Box<dyn Persistence<T>>,
        listener: TcpListener,
        addrs: AddrTable,
        config: &TcpClusterConfig,
    ) -> Self {
        Self::spawn_node(rep, listener, addrs, config, None, Some(store))
    }

    /// Like [`TcpReplicaNode::spawn`], but shard-aware: `ShardedRequest`
    /// frames are version-checked against the deployment's shared routing
    /// table (stale versions are NAKed with the authoritative table) and
    /// accepted operations answer as `ShardedResponse` frames carrying
    /// their global identity.
    pub(crate) fn spawn_sharded(
        dt: T,
        id: ReplicaId,
        listener: TcpListener,
        addrs: AddrTable,
        config: &TcpClusterConfig,
        shard: ShardCtx,
    ) -> Self {
        let rep = Replica::new(dt, id, config.n_replicas, config.replica);
        Self::spawn_node(rep, listener, addrs, config, Some(shard), None)
    }

    /// Spawns a node recovering from a crash (paper §9.3): the replica
    /// rebuilds its state from gossip, serving nothing until it has heard
    /// from every peer. Only `stub` (the stable-storage label floor and
    /// local minimum labels) survives from before the crash.
    ///
    /// # Panics
    ///
    /// Panics if threads cannot be spawned.
    pub fn spawn_recovered(
        dt: T,
        stub: RecoveryStub,
        listener: TcpListener,
        addrs: AddrTable,
        config: &TcpClusterConfig,
    ) -> Self {
        let rep = Replica::recover(dt, stub, config.n_replicas, config.replica);
        Self::spawn_node(rep, listener, addrs, config, None, None)
    }

    fn spawn_node(
        rep: Replica<T>,
        listener: TcpListener,
        addrs: AddrTable,
        config: &TcpClusterConfig,
        shard: Option<ShardCtx>,
        store: Option<Box<dyn Persistence<T>>>,
    ) -> Self {
        let id = rep.id();
        let addr = listener.local_addr().expect("listener address");
        let stop = Arc::new(AtomicBool::new(false));
        let (input_tx, input_rx) = unbounded::<NodeInput<T>>();
        let clients: Arc<Mutex<HashMap<ClientId, TcpStream>>> =
            Arc::new(Mutex::new(HashMap::new()));

        let acceptor = spawn_acceptor::<T>(
            id,
            listener,
            input_tx.clone(),
            clients.clone(),
            stop.clone(),
            shard.clone(),
            config.obs.registry.clone(),
        );
        let core = spawn_core::<T>(
            rep,
            config.clone(),
            addrs,
            input_rx,
            clients,
            stop.clone(),
            shard,
            store,
        );

        TcpReplicaNode {
            id,
            addr,
            input_tx,
            core: Some(core),
            acceptor: Some(acceptor),
            stop,
        }
    }

    /// The node's replica identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Fetches the node's [`StabilitySnapshot`] through its input
    /// channel (consistent: taken between state-machine steps).
    /// `None` if the node is shutting down or wedged past `timeout`.
    pub fn stability(&self, timeout: Duration) -> Option<StabilitySnapshot> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.input_tx.send(NodeInput::Inspect(tx)).ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// The address clients and peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the node's threads and returns the final replica state
    /// machine.
    pub fn shutdown(mut self) -> Replica<T> {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.input_tx.send(NodeInput::Shutdown);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.core
            .take()
            .expect("core joined once")
            .join()
            .expect("replica core panicked")
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_acceptor<T>(
    id: ReplicaId,
    listener: TcpListener,
    input_tx: Sender<NodeInput<T>>,
    clients: Arc<Mutex<HashMap<ClientId, TcpStream>>>,
    stop: Arc<AtomicBool>,
    shard: Option<ShardCtx>,
    registry: esds_obs::MetricsRegistry,
) -> JoinHandle<()>
where
    T: SerialDataType + Send + 'static,
    T::Operator: Wire + Send,
    T::Value: Wire + Send,
{
    std::thread::Builder::new()
        .name(format!("esds-tcp-accept-{}", id.0))
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let (stream, _) = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let tx = input_tx.clone();
                let clients = clients.clone();
                let stop = stop.clone();
                let shard = shard.clone();
                let registry = registry.clone();
                let _ = std::thread::Builder::new()
                    .name(format!("esds-tcp-read-{}", id.0))
                    .spawn(move || {
                        read_connection::<T>(stream, tx, clients, stop, shard, registry)
                    });
            }
        })
        .expect("spawn acceptor")
}

/// Reads frames from one inbound connection until EOF, error, or shutdown.
/// The first frame must be a `Hello`; client connections are registered so
/// the core thread can write responses back.
fn read_connection<T>(
    stream: TcpStream,
    input_tx: Sender<NodeInput<T>>,
    clients: Arc<Mutex<HashMap<ClientId, TcpStream>>>,
    stop: Arc<AtomicBool>,
    shard: Option<ShardCtx>,
    registry: esds_obs::MetricsRegistry,
) where
    T: SerialDataType,
    T::Operator: Wire,
    T::Value: Wire,
{
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = stream.try_clone().expect("clone stream");
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 4096];
    let mut registered: Option<ClientId> = None;
    'conn: loop {
        // Drain complete frames already buffered.
        loop {
            match decode_frame(&mut buf) {
                Ok(Some(frame)) => {
                    let msg: WireMessage<T::Operator, T::Value> = match decode_message(&frame) {
                        Ok(m) => m,
                        Err(_) => break 'conn, // malformed payload: drop connection
                    };
                    match msg {
                        WireMessage::Hello(HelloId::Client(c)) => {
                            if let Ok(w) = stream.try_clone() {
                                clients.lock().insert(c, w);
                                registered = Some(c);
                            }
                        }
                        WireMessage::Hello(HelloId::Replica(_)) => {}
                        WireMessage::Request(m) => {
                            if input_tx.send(NodeInput::Request(m)).is_err() {
                                break 'conn;
                            }
                        }
                        WireMessage::ShardedRequest(m) => {
                            // A non-sharded node cannot version-check; the
                            // frame is a protocol error, drop the conn.
                            let Some(ctx) = &shard else { break 'conn };
                            let stale = {
                                let table = ctx.table.lock();
                                (table.version() != m.version).then(|| table.clone())
                            };
                            match stale {
                                None => {
                                    // Version handshake passed: the client
                                    // routed under the table this shard
                                    // serves, so the key belongs here.
                                    ctx.globals.lock().insert(m.desc.id, m.global);
                                    if input_tx
                                        .send(NodeInput::Request(RequestMsg { desc: m.desc }))
                                        .is_err()
                                    {
                                        break 'conn;
                                    }
                                }
                                Some(table) => {
                                    // NAK before the replica ever sees the
                                    // descriptor. Written through the
                                    // registered-clients lock so the frame
                                    // cannot interleave with a response the
                                    // core thread is writing to the same
                                    // stream. An unregistered sender (no
                                    // Hello yet) just gets nothing — its
                                    // retry loop will resend.
                                    let mut out = BytesMut::new();
                                    let nak: WireMessage<T::Operator, T::Value> =
                                        WireMessage::ShardedResponse(ShardedResponseMsg::Nak {
                                            global: m.global,
                                            table,
                                        });
                                    encode_message(&nak, &mut out);
                                    if let Some(c) = registered {
                                        let mut guard = clients.lock();
                                        if let Some(w) = guard.get_mut(&c) {
                                            let _ = w.write_all(&out);
                                        }
                                    }
                                }
                            }
                        }
                        WireMessage::Gossip(g) => {
                            if input_tx
                                .send(NodeInput::Gossip(GossipEnvelope::Snapshot(g)))
                                .is_err()
                            {
                                break 'conn;
                            }
                        }
                        WireMessage::GossipSummary(s) => {
                            if input_tx
                                .send(NodeInput::Gossip(GossipEnvelope::Snapshot(s.into_gossip())))
                                .is_err()
                            {
                                break 'conn;
                            }
                        }
                        WireMessage::GossipBatched(b) => {
                            if input_tx
                                .send(NodeInput::Gossip(GossipEnvelope::Batched(b)))
                                .is_err()
                            {
                                break 'conn;
                            }
                        }
                        WireMessage::StabilityQuery => {
                            // Answered from the reader thread: the snapshot
                            // is fetched over the core's input channel (so
                            // it is consistent) and written back through
                            // the registered-clients lock (so the frame
                            // cannot interleave with a response the core
                            // thread is writing). A dropped or timed-out
                            // probe is simply not answered — the client's
                            // barrier loop re-queries.
                            let (tx, rx) = crossbeam::channel::bounded(1);
                            if input_tx.send(NodeInput::Inspect(tx)).is_err() {
                                break 'conn;
                            }
                            if let Ok(snap) = rx.recv_timeout(Duration::from_secs(5)) {
                                let mut out = BytesMut::new();
                                let info: WireMessage<T::Operator, T::Value> =
                                    WireMessage::StabilityInfo(StabilityInfoMsg {
                                        order: snap.order,
                                        stable_everywhere: snap
                                            .stable_everywhere
                                            .into_iter()
                                            .collect(),
                                    });
                                encode_message(&info, &mut out);
                                if let Some(c) = registered {
                                    let mut guard = clients.lock();
                                    if let Some(w) = guard.get_mut(&c) {
                                        let _ = w.write_all(&out);
                                    }
                                }
                            }
                        }
                        WireMessage::MetricsQuery => {
                            // Answered straight from the reader thread:
                            // the registry is lock-free to read and
                            // process-global, so no core round-trip is
                            // needed. Written through the registered-
                            // clients lock like every other reply. A
                            // node running with metrics disabled answers
                            // an empty snapshot rather than erroring, so
                            // pollers need not know the server's config.
                            let mut out = BytesMut::new();
                            let info: WireMessage<T::Operator, T::Value> =
                                WireMessage::MetricsInfo(registry.snapshot());
                            encode_message(&info, &mut out);
                            if let Some(c) = registered {
                                let mut guard = clients.lock();
                                if let Some(w) = guard.get_mut(&c) {
                                    let _ = w.write_all(&out);
                                }
                            }
                        }
                        WireMessage::Response(_)
                        | WireMessage::ShardedResponse(_)
                        | WireMessage::StabilityInfo(_)
                        | WireMessage::MetricsInfo(_) => {} // nonsensical inbound; ignore
                    }
                }
                Ok(None) => break,
                Err(_) => break 'conn, // corrupt frame: drop connection
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    if let Some(c) = registered {
        clients.lock().remove(&c);
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_core<T>(
    mut rep: Replica<T>,
    config: TcpClusterConfig,
    addrs: AddrTable,
    input_rx: Receiver<NodeInput<T>>,
    clients: Arc<Mutex<HashMap<ClientId, TcpStream>>>,
    stop: Arc<AtomicBool>,
    shard: Option<ShardCtx>,
    mut store: Option<Box<dyn Persistence<T>>>,
) -> JoinHandle<Replica<T>>
where
    T: SerialDataType + Send + 'static,
    T::Operator: Wire + Send,
    T::Value: Wire + Send,
    T::State: Send,
{
    let id = rep.id();
    let n = rep.n();
    // Metric handles resolve to no-ops when the registry is disabled;
    // the per-tick gauge math below is additionally gated on
    // `obs_enabled` so the disabled path costs one predictable branch.
    let scope = config.obs.replica_scope(id);
    let obs_enabled = scope.is_enabled();
    let m_requests = scope.counter("requests");
    let m_gossip_in = scope.counter("gossip_in");
    let m_responses = scope.counter("responses");
    let m_unstable = scope.gauge("unstable_window");
    let m_wm_age = scope.gauge("stable_watermark_age_ms");
    let m_peers: Vec<(esds_obs::Counter, esds_obs::Counter)> = (0..n)
        .map(|p| {
            (
                scope.counter(&format!("peer{p}/gossip_msgs")),
                scope.counter(&format!("peer{p}/gossip_bytes")),
            )
        })
        .collect();
    let tracer = config.obs.tracer.clone();
    let trace_shard = config.obs.shard;
    std::thread::Builder::new()
        .name(format!("esds-tcp-core-{}", id.0))
        .spawn(move || {
            let mut peers: Vec<Option<(SocketAddr, TcpStream)>> = (0..n).map(|_| None).collect();
            let mut next_gossip = Instant::now() + config.gossip_interval;
            let mut out = BytesMut::new();
            // Sampled in-flight ops awaiting a `stabilize` span, and the
            // watermark-advance clock behind `stable_watermark_age_ms`.
            let mut pending_stab: Vec<(OpId, String)> = Vec::new();
            let mut last_stable_n = 0usize;
            let mut last_advance = Instant::now();
            'run: loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                if now >= next_gossip {
                    for (p, peer) in peers.iter_mut().enumerate() {
                        let pid = ReplicaId(p as u32);
                        if pid == id {
                            continue;
                        }
                        // poll_gossip paces batched strategies: a tick
                        // that is still accumulating sends nothing.
                        let Some(env) = rep.poll_gossip(pid) else {
                            continue;
                        };
                        // Sync-before-release: a failing disk silences
                        // the node before the envelope leaves it.
                        if let Some(st) = store.as_mut() {
                            if st.persist(&mut rep).is_err() {
                                break 'run;
                            }
                        }
                        out.clear();
                        match env {
                            GossipEnvelope::Batched(b) => {
                                let msg: WireMessage<T::Operator, T::Value> =
                                    WireMessage::GossipBatched(b);
                                encode_message(&msg, &mut out);
                            }
                            GossipEnvelope::Snapshot(g) if config.summarized_gossip => {
                                let msg: WireMessage<T::Operator, T::Value> =
                                    WireMessage::GossipSummary(SummarizedGossip::from_gossip(&g));
                                encode_message(&msg, &mut out);
                            }
                            GossipEnvelope::Snapshot(g) => {
                                let msg: WireMessage<T::Operator, T::Value> =
                                    WireMessage::Gossip(g);
                                encode_message(&msg, &mut out);
                            }
                        }
                        let peer_addr = addrs.lock()[p];
                        if send_to_peer(peer, peer_addr, id, &out) {
                            m_peers[p].0.inc();
                            m_peers[p].1.add(out.len() as u64);
                        } else {
                            // Connection failed: the §10.4 delta state
                            // (incremental watermark / batched handshake)
                            // must rewind so nothing is lost.
                            rep.reset_watermark(pid);
                        }
                    }
                    if obs_enabled || !pending_stab.is_empty() {
                        let stable_n = rep.stable_everywhere().len();
                        if stable_n > last_stable_n {
                            last_stable_n = stable_n;
                            last_advance = now;
                        }
                        if obs_enabled {
                            m_wm_age.set(last_advance.elapsed().as_millis() as u64);
                            m_unstable.set(rep.rcvd().len().saturating_sub(stable_n) as u64);
                        }
                        if !pending_stab.is_empty() {
                            let se = rep.stable_everywhere();
                            pending_stab.retain(|(opid, s)| {
                                if se.contains(opid) {
                                    tracer.emit(trace_shard, s, Stage::Stabilize);
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    next_gossip = now + config.gossip_interval;
                }
                let wait = next_gossip.saturating_duration_since(Instant::now());
                let input = match input_rx.recv_timeout(wait.max(Duration::from_micros(200))) {
                    Ok(i) => i,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                let effects = match input {
                    NodeInput::Request(m) => {
                        m_requests.inc();
                        if tracer.is_enabled() {
                            let ids = m.desc.id.to_string();
                            if tracer.sampled(&ids) {
                                tracer.emit(trace_shard, &ids, Stage::ReplicaAccept);
                                pending_stab.push((m.desc.id, ids));
                            }
                        }
                        rep.on_request(m.desc)
                    }
                    NodeInput::Gossip(g) => {
                        m_gossip_in.inc();
                        rep.on_gossip_envelope(g)
                    }
                    NodeInput::Inspect(tx) => {
                        let _ = tx.send(StabilitySnapshot {
                            order: rep.local_order(),
                            stable_everywhere: rep.stable_everywhere().clone(),
                        });
                        Vec::new()
                    }
                    NodeInput::Shutdown => break,
                };
                // Persist (append + sync) the handler's changes before
                // any response frame is written — a crash after this
                // point re-delivers the answered value from disk; a
                // persist failure is the node's death, effects dropped.
                if let Some(st) = store.as_mut() {
                    if st.persist(&mut rep).is_err() {
                        break 'run;
                    }
                }
                for e in effects {
                    m_responses.inc();
                    if tracer.is_enabled() {
                        // The op carries its minlabel by the time the
                        // replica answers (Thm 5.7's labelling step).
                        tracer.emit(trace_shard, &e.msg.id.to_string(), Stage::Label);
                    }
                    out.clear();
                    // Operations accepted through the sharded handshake
                    // answer with their global identity attached. The
                    // mapping is consumed here so the shared map stays
                    // bounded by in-flight operations, not total history;
                    // a client retry of an already-answered request
                    // re-inserts it before the replica re-answers.
                    let global = shard
                        .as_ref()
                        .and_then(|ctx| ctx.globals.lock().remove(&e.msg.id));
                    let msg: WireMessage<T::Operator, T::Value> = match global {
                        Some(global) => WireMessage::ShardedResponse(ShardedResponseMsg::Ok {
                            global,
                            resp: e.msg,
                        }),
                        None => WireMessage::Response(e.msg),
                    };
                    encode_message(&msg, &mut out);
                    let mut guard = clients.lock();
                    if let Some(w) = guard.get_mut(&e.client) {
                        if w.write_all(&out).is_err() {
                            guard.remove(&e.client);
                        }
                    }
                }
            }
            rep
        })
        .expect("spawn core")
}

/// Ensures a live outbound connection to a peer and writes `frame_bytes`.
/// Returns false if the peer was unreachable or the write failed (the
/// connection slot is cleared for a retry at the next tick). A slot dialed
/// to a stale address (the peer restarted elsewhere) is re-dialed.
fn send_to_peer(
    slot: &mut Option<(SocketAddr, TcpStream)>,
    addr: SocketAddr,
    me: ReplicaId,
    frame_bytes: &[u8],
) -> bool {
    if slot.as_ref().is_some_and(|(dialed, _)| *dialed != addr) {
        *slot = None;
    }
    if slot.is_none() {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Ok(mut s) => {
                let _ = s.set_nodelay(true);
                let mut hello = BytesMut::new();
                encode_message::<NoOp, NoOp>(&WireMessage::Hello(HelloId::Replica(me)), &mut hello);
                if s.write_all(&hello).is_err() {
                    return false;
                }
                *slot = Some((addr, s));
            }
            Err(_) => return false,
        }
    }
    if let Some((_, s)) = slot {
        if s.write_all(frame_bytes).is_ok() {
            return true;
        }
    }
    *slot = None;
    false
}

/// Placeholder operator/value type for frames that carry neither (Hello).
enum NoOp {}
impl Wire for NoOp {
    fn encode(&self, _buf: &mut impl bytes::BufMut) {
        match *self {}
    }
    fn decode(_buf: &mut impl bytes::Buf) -> Result<Self, crate::WireError> {
        Err(crate::WireError::InvalidTag {
            context: "NoOp",
            tag: 0,
        })
    }
}

/// A client front end speaking the wire protocol over TCP.
pub struct TcpClient<T: SerialDataType> {
    fe: FrontEnd<T::Operator, T::Value>,
    conns: Vec<Option<(SocketAddr, TcpStream)>>,
    addrs: AddrTable,
    buf: BytesMut,
    m_submitted: esds_obs::Counter,
    m_answered: esds_obs::Counter,
    m_resends: esds_obs::Counter,
}

impl<T> TcpClient<T>
where
    T: SerialDataType,
    T::Operator: Wire + Clone,
    T::Value: Wire + Clone,
{
    /// Connects a client with identity `client` to a cluster whose replica
    /// addresses are `addrs` (index = replica id). The connection to the
    /// relay replica is opened lazily on first use.
    ///
    /// Clients of one service must use distinct [`ClientId`]s — operation
    /// identifiers embed them (paper §6.2, Invariant 4.1).
    pub fn connect(client: ClientId, addrs: Vec<SocketAddr>) -> Self {
        Self::connect_shared(client, Arc::new(Mutex::new(addrs)))
    }

    /// Like [`TcpClient::connect`], but sharing a live [`AddrTable`] (so
    /// node restarts at new addresses are picked up on the next dial).
    pub fn connect_shared(client: ClientId, addrs: AddrTable) -> Self {
        let n = addrs.lock().len();
        TcpClient {
            fe: FrontEnd::new(
                client,
                n,
                RelayPolicy::Fixed(ReplicaId(client.0 % n as u32)),
            ),
            conns: (0..n).map(|_| None).collect(),
            addrs,
            buf: BytesMut::with_capacity(4 * 1024),
            m_submitted: esds_obs::Counter::noop(),
            m_answered: esds_obs::Counter::noop(),
            m_resends: esds_obs::Counter::noop(),
        }
    }

    /// Registers client-side counters (`ops_submitted`, `ops_answered`,
    /// `resends`) under `scope`. Until called, the handles are no-ops.
    pub fn attach_metrics(&mut self, scope: &esds_obs::Scope) {
        self.m_submitted = scope.counter("ops_submitted");
        self.m_answered = scope.counter("ops_answered");
        self.m_resends = scope.counter("resends");
    }

    /// The client identity.
    pub fn client(&self) -> ClientId {
        self.fe.client()
    }

    /// Submits an operation; returns its id immediately.
    pub fn submit(&mut self, op: T::Operator, prev: &[OpId], strict: bool) -> OpId {
        self.m_submitted.inc();
        let (id, sends) = self.fe.submit(op, prev.iter().copied(), strict);
        for (r, msg) in sends {
            self.send_request(r, &msg);
        }
        id
    }

    /// The value previously returned for `id`, if completed.
    pub fn value_of(&self, id: OpId) -> Option<&T::Value> {
        self.fe.value_of(id)
    }

    /// Waits until `id` is answered or `timeout` elapses, re-sending
    /// pending requests every 50 ms (paper footnote 3).
    pub fn await_response(&mut self, id: OpId, timeout: Duration) -> Option<T::Value> {
        let deadline = Instant::now() + timeout;
        let mut next_retry = Instant::now() + Duration::from_millis(50);
        loop {
            if let Some(v) = self.fe.value_of(id) {
                self.m_answered.inc();
                return Some(v.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if now >= next_retry {
                for (r, msg) in self.fe.resend_pending() {
                    self.m_resends.inc();
                    self.send_request(r, &msg);
                }
                next_retry = now + Duration::from_millis(50);
            }
            self.pump_responses();
        }
    }

    /// Polls replica `r` for its process's metrics snapshot, waiting up
    /// to `timeout`. `None` on connection failure or timeout. Any frames
    /// that arrive ahead of the answer (responses to in-flight ops) are
    /// fed to the front end as usual.
    pub fn metrics(
        &mut self,
        r: ReplicaId,
        timeout: Duration,
    ) -> Option<esds_obs::MetricsSnapshot> {
        let idx = r.0 as usize;
        let mut out = BytesMut::new();
        let q: WireMessage<T::Operator, T::Value> = WireMessage::MetricsQuery;
        encode_message(&q, &mut out);
        self.ensure_conn(idx);
        let (_, s) = self.conns[idx].as_mut()?;
        s.write_all(&out).ok()?;
        let deadline = Instant::now() + timeout;
        let mut chunk = [0u8; 4096];
        while Instant::now() < deadline {
            let Some((_, s)) = &mut self.conns[idx] else {
                return None;
            };
            match s.read(&mut chunk) {
                Ok(0) => {
                    self.conns[idx] = None;
                    return None;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => {
                    self.conns[idx] = None;
                    return None;
                }
            }
            loop {
                match decode_frame(&mut self.buf) {
                    Ok(Some(frame)) => match decode_message::<T::Operator, T::Value>(&frame) {
                        Ok(WireMessage::MetricsInfo(snap)) => return Some(snap),
                        Ok(WireMessage::Response(m)) => {
                            let _ = self.fe.on_response(m);
                        }
                        _ => {}
                    },
                    Ok(None) => break,
                    Err(_) => {
                        self.buf.clear();
                        return None;
                    }
                }
            }
        }
        None
    }

    /// Dials replica `idx` (with the client Hello) if the slot is empty
    /// or was dialed to a stale address.
    fn ensure_conn(&mut self, idx: usize) {
        let addr = self.addrs.lock()[idx];
        if self.conns[idx]
            .as_ref()
            .is_some_and(|(dialed, _)| *dialed != addr)
        {
            self.conns[idx] = None;
        }
        if self.conns[idx].is_none() {
            if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(POLL));
                let mut hello = BytesMut::new();
                let h: WireMessage<T::Operator, T::Value> =
                    WireMessage::Hello(HelloId::Client(self.fe.client()));
                encode_message(&h, &mut hello);
                if s.write_all(&hello).is_ok() {
                    self.conns[idx] = Some((addr, s));
                }
            }
        }
    }

    fn send_request(&mut self, r: ReplicaId, msg: &RequestMsg<T::Operator>) {
        let mut out = BytesMut::new();
        let wire: WireMessage<T::Operator, T::Value> = WireMessage::Request(msg.clone());
        encode_message(&wire, &mut out);
        let idx = r.0 as usize;
        self.ensure_conn(idx);
        if let Some((_, s)) = &mut self.conns[idx] {
            if s.write_all(&out).is_err() {
                self.conns[idx] = None;
            }
        }
    }

    /// Reads whatever responses are available (bounded by the poll
    /// timeout) and feeds them to the front end.
    fn pump_responses(&mut self) {
        let mut chunk = [0u8; 4096];
        for slot in &mut self.conns {
            let Some((_, s)) = slot else { continue };
            match s.read(&mut chunk) {
                Ok(0) => {
                    *slot = None;
                    continue;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => {
                    *slot = None;
                    continue;
                }
            }
        }
        loop {
            match decode_frame(&mut self.buf) {
                Ok(Some(frame)) => {
                    if let Ok(WireMessage::<T::Operator, T::Value>::Response(m)) =
                        decode_message(&frame)
                    {
                        self.fe.on_response(m);
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.buf.clear();
                    break;
                }
            }
        }
    }
}

/// A localhost cluster: `n` replica nodes plus a client factory.
///
/// # Examples
///
/// ```no_run
/// use std::time::Duration;
/// use esds_datatypes::{Counter, CounterOp, CounterValue};
/// use esds_wire::{TcpCluster, TcpClusterConfig};
///
/// let mut cluster = TcpCluster::launch(Counter, TcpClusterConfig::new(3));
/// let mut client = cluster.client();
/// let id = client.submit(CounterOp::Increment(1), &[], false);
/// assert_eq!(
///     client.await_response(id, Duration::from_secs(5)),
///     Some(CounterValue::Ack)
/// );
/// cluster.shutdown();
/// ```
pub struct TcpCluster<T: SerialDataType> {
    dt: T,
    config: TcpClusterConfig,
    nodes: Vec<Option<TcpReplicaNode<T>>>,
    addrs: AddrTable,
    next_client: u32,
}

impl<T> TcpCluster<T>
where
    T: SerialDataType + Clone + Send + 'static,
    T::Operator: Wire + Send + Clone,
    T::Value: Wire + Send + Clone,
    T::State: Send,
{
    /// Binds `n` listeners on ephemeral localhost ports and spawns the
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero or localhost listeners cannot be
    /// bound.
    pub fn launch(dt: T, config: TcpClusterConfig) -> Self {
        assert!(config.n_replicas > 0, "need at least one replica");
        let listeners: Vec<TcpListener> = (0..config.n_replicas)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind localhost"))
            .collect();
        let addrs: AddrTable = Arc::new(Mutex::new(
            listeners
                .iter()
                .map(|l| l.local_addr().expect("addr"))
                .collect(),
        ));
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                Some(TcpReplicaNode::spawn(
                    dt.clone(),
                    ReplicaId(i as u32),
                    l,
                    addrs.clone(),
                    &config,
                ))
            })
            .collect();
        TcpCluster {
            dt,
            config,
            nodes,
            addrs,
            next_client: 0,
        }
    }

    /// A snapshot of the listen addresses, indexed by replica id.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.lock().clone()
    }

    /// Creates a new client with the next unused identity. Clients share
    /// the cluster's live address table, so they follow node restarts.
    pub fn client(&mut self) -> TcpClient<T> {
        let c = ClientId(self.next_client);
        self.next_client += 1;
        TcpClient::connect_shared(c, self.addrs.clone())
    }

    /// Crashes node `r`: its threads stop and all volatile state is lost.
    /// Returns the stable-storage stub (paper §9.3: the label-counter
    /// floor and locally-generated minimum labels) for a later
    /// [`TcpCluster::restart`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or already crashed.
    pub fn crash(&mut self, r: ReplicaId) -> RecoveryStub {
        let node = self.nodes[r.0 as usize].take().expect("node is running");
        node.shutdown().crash()
    }

    /// Restarts a crashed node from its stable-storage stub on a fresh
    /// ephemeral port, updating the shared address table. The node rejoins
    /// by gossip: it serves nothing until it has heard from every peer
    /// (paper §9.3), after which Theorem 9.4's bounds apply again.
    ///
    /// # Panics
    ///
    /// Panics if the node is still running or the listener cannot bind.
    pub fn restart(&mut self, stub: RecoveryStub) {
        let idx = stub.id.0 as usize;
        assert!(self.nodes[idx].is_none(), "node {idx} is still running");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
        self.addrs.lock()[idx] = listener.local_addr().expect("addr");
        self.nodes[idx] = Some(TcpReplicaNode::spawn_recovered(
            self.dt.clone(),
            stub,
            listener,
            self.addrs.clone(),
            &self.config,
        ));
    }

    /// Stops every running node, returning the final replica state
    /// machines (crashed slots are skipped).
    pub fn shutdown(self) -> Vec<Replica<T>> {
        self.nodes
            .into_iter()
            .flatten()
            .map(TcpReplicaNode::shutdown)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{Counter, CounterOp, CounterValue};

    #[test]
    fn cluster_roundtrip_plain_gossip() {
        exercise(TcpClusterConfig::new(3));
    }

    #[test]
    fn cluster_roundtrip_summarized_gossip() {
        exercise(TcpClusterConfig::new(3).with_summarized_gossip());
    }

    #[test]
    fn cluster_roundtrip_batched_gossip() {
        // The §10.4 batched wire contract over real sockets: every second
        // gossip tick one GossipBatched frame per peer, strict ops still
        // stabilize through the summary-borne votes.
        let mut config = TcpClusterConfig::new(3);
        config.replica = ReplicaConfig::default().with_batched(2);
        exercise(config);
    }

    fn exercise(config: TcpClusterConfig) {
        let mut cluster = TcpCluster::launch(Counter, config);
        let mut c0 = cluster.client();
        let mut c1 = cluster.client();

        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(c0.submit(CounterOp::Increment(1), &[], false));
            ids.push(c1.submit(CounterOp::Increment(10), &[], false));
        }
        for id in &ids {
            let owner = if id.client() == c0.client() {
                &mut c0
            } else {
                &mut c1
            };
            assert_eq!(
                owner.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }

        // Strict audit pinned after everything sees 4·1 + 4·10 = 44.
        let audit = c0.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            c0.await_response(audit, Duration::from_secs(30)),
            Some(CounterValue::Count(44)),
        );

        let reps = cluster.shutdown();
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(states.iter().all(|s| *s == 44), "diverged: {states:?}");
    }

    #[test]
    fn crash_and_recovery_over_sockets() {
        // §9.3 on the real deployment: crash a replica (volatile state
        // lost, stable-storage stub kept), keep working against the
        // survivors, restart it on a fresh port, and verify a strict
        // operation — which needs stability at *every* replica — completes
        // and all replicas converge.
        let mut cluster = TcpCluster::launch(Counter, TcpClusterConfig::new(3));
        let mut c = cluster.client(); // relay = replica 0

        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(c.submit(CounterOp::Increment(1), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }

        let stub = cluster.crash(ReplicaId(2));

        // Nonstrict work keeps flowing through the survivors.
        for _ in 0..5 {
            ids.push(c.submit(CounterOp::Increment(1), &[], false));
        }
        for id in ids.iter().skip(5) {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }

        cluster.restart(stub);

        // The strict audit requires replica 2 to be back, caught up, and
        // voting stable; Theorem 9.4: liveness resumes after recovery.
        let audit = c.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            c.await_response(audit, Duration::from_secs(60)),
            Some(CounterValue::Count(10)),
        );

        let reps = cluster.shutdown();
        assert_eq!(reps.len(), 3);
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(states.iter().all(|s| *s == 10), "diverged: {states:?}");
    }

    #[test]
    fn client_times_out_against_dead_address() {
        // No listener: submit fails to connect, await returns None quickly.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut client: TcpClient<Counter> = TcpClient::connect(ClientId(0), vec![addr]);
        let id = client.submit(CounterOp::Read, &[], false);
        assert_eq!(client.await_response(id, Duration::from_millis(300)), None);
    }
}

//! Checked encode/decode primitives and the [`Wire`] trait.
//!
//! All multi-byte integers are LEB128 varints (small values — sequence
//! numbers, set sizes, label counters — dominate the message mix, see the
//! gossip sizing model in `esds-alg::messages`). Decoding never panics:
//! every read is length-checked and returns [`WireError`] on malformed
//! input, so a node can safely decode bytes received from the network.

use std::collections::{BTreeMap, BTreeSet};

use bytes::{Buf, BufMut};
use esds_core::{
    ClientId, IdSummary, Label, LabelSlot, OpDescriptor, OpId, ReplicaId, RoutingTable, ShardedOpId,
};

use crate::error::WireError;

/// Maximum number of elements accepted for any length-prefixed collection.
/// Guards decoders against hostile or corrupt length prefixes.
pub const MAX_COLLECTION_LEN: u64 = 1 << 20;

/// A type with a canonical binary wire representation.
///
/// Implementations must round-trip: `decode(encode(x)) == x`. The proptests
/// in this crate verify this for every implementation.
///
/// # Examples
///
/// ```
/// use bytes::BytesMut;
/// use esds_core::{ClientId, OpId};
/// use esds_wire::Wire;
///
/// # fn main() -> Result<(), esds_wire::WireError> {
/// let id = OpId::new(ClientId(3), 41);
/// let mut buf = BytesMut::new();
/// id.encode(&mut buf);
/// let mut bytes = buf.freeze();
/// assert_eq!(OpId::decode(&mut bytes)?, id);
/// # Ok(())
/// # }
/// ```
pub trait Wire: Sized {
    /// Appends the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decodes a value from the front of `buf`, consuming exactly the
    /// bytes that [`encode`](Self::encode) produced.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError>;

    /// Convenience: the encoded bytes as a vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decodes from a slice, requiring the whole slice to be
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input; trailing bytes are
    /// reported as an [`WireError::InvalidTag`] on context `trailing`.
    fn from_wire_bytes(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if bytes.has_remaining() {
            return Err(WireError::InvalidTag {
                context: "trailing",
                tag: bytes.chunk()[0],
            });
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Writes a `u64` as a LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] on truncation, [`WireError::VarintOverflow`]
/// if the encoding exceeds 64 bits.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof { context: "varint" });
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(WireError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads one byte.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] on truncation.
pub fn get_u8(buf: &mut impl Buf, context: &'static str) -> Result<u8, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof { context });
    }
    Ok(buf.get_u8())
}

/// Reads a length prefix bounded by [`MAX_COLLECTION_LEN`].
///
/// # Errors
///
/// [`WireError::TooLarge`] if the declared length exceeds the bound.
pub fn get_len(buf: &mut impl Buf, context: &'static str) -> Result<usize, WireError> {
    let len = get_varint(buf)?;
    if len > MAX_COLLECTION_LEN {
        return Err(WireError::TooLarge {
            context,
            len,
            max: MAX_COLLECTION_LEN,
        });
    }
    Ok(len as usize)
}

impl Wire for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, *self);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        get_varint(buf)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, u64::from(*self));
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u32::try_from(v).map_err(|_| WireError::TooLarge {
            context: "u32",
            len: v,
            max: u64::from(u32::MAX),
        })
    }
}

impl Wire for i64 {
    /// Zigzag-encoded so small negative numbers stay short.
    fn encode(&self, buf: &mut impl BufMut) {
        let zz = ((self << 1) ^ (self >> 63)) as u64;
        put_varint(buf, zz);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let zz = get_varint(buf)?;
        Ok(((zz >> 1) as i64) ^ -((zz & 1) as i64))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        match get_u8(buf, "bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let len = get_len(buf, "string")?;
        if buf.remaining() < len {
            return Err(WireError::UnexpectedEof { context: "string" });
        }
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        match get_u8(buf, "Option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let len = get_len(buf, "Vec")?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let len = get_len(buf, "BTreeSet")?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let len = get_len(buf, "BTreeMap")?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

// ---------------------------------------------------------------------
// Core vocabulary
// ---------------------------------------------------------------------

impl Wire for ClientId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(ClientId(u32::decode(buf)?))
    }
}

impl Wire for ReplicaId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(ReplicaId(u32::decode(buf)?))
    }
}

impl Wire for OpId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.client().encode(buf);
        self.seq().encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let client = ClientId::decode(buf)?;
        let seq = u64::decode(buf)?;
        Ok(OpId::new(client, seq))
    }
}

impl Wire for Label {
    fn encode(&self, buf: &mut impl BufMut) {
        self.counter.encode(buf);
        self.replica.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let counter = u64::decode(buf)?;
        let replica = ReplicaId::decode(buf)?;
        Ok(Label::new(counter, replica))
    }
}

impl Wire for LabelSlot {
    fn encode(&self, buf: &mut impl BufMut) {
        match self.finite() {
            None => buf.put_u8(0),
            Some(l) => {
                buf.put_u8(1);
                l.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        match get_u8(buf, "LabelSlot")? {
            0 => Ok(LabelSlot::Inf),
            1 => Ok(LabelSlot::from(Label::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                context: "LabelSlot",
                tag,
            }),
        }
    }
}

impl Wire for IdSummary {
    fn encode(&self, buf: &mut impl BufMut) {
        let wm: Vec<(ClientId, u64)> = self.watermarks().collect();
        wm.encode(buf);
        let ex: Vec<OpId> = self.exceptions().collect();
        ex.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let wm: Vec<(ClientId, u64)> = Vec::decode(buf)?;
        let ex: Vec<OpId> = Vec::decode(buf)?;
        let mut s = IdSummary::new();
        for (c, w) in wm {
            // Watermark w covers sequences 0..w; re-inserting is O(w) but
            // bounded by MAX_COLLECTION_LEN via the member count below.
            if w > MAX_COLLECTION_LEN {
                return Err(WireError::TooLarge {
                    context: "IdSummary watermark",
                    len: w,
                    max: MAX_COLLECTION_LEN,
                });
            }
            for seq in 0..w {
                s.insert(OpId::new(c, seq));
            }
        }
        s.extend(ex);
        Ok(s)
    }
}

impl Wire for ShardedOpId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.client().encode(buf);
        self.seq().encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let client = ClientId::decode(buf)?;
        let seq = u64::decode(buf)?;
        Ok(ShardedOpId::new(client, seq))
    }
}

impl Wire for RoutingTable {
    fn encode(&self, buf: &mut impl BufMut) {
        self.version().encode(buf);
        self.n_shards().encode(buf);
        // Same bytes as Vec<u32>::encode, without cloning the slot map.
        let owners = self.slot_owners();
        put_varint(buf, owners.len() as u64);
        for s in owners {
            s.encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let version = u64::decode(buf)?;
        let n_shards = u32::decode(buf)?;
        let slots: Vec<u32> = Vec::decode(buf)?;
        RoutingTable::from_parts(version, n_shards, slots).map_err(|_| WireError::InvalidTag {
            context: "RoutingTable",
            tag: 0,
        })
    }
}

impl<O: Wire> Wire for OpDescriptor<O> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.id.encode(buf);
        self.op.encode(buf);
        self.prev.encode(buf);
        self.strict.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let id = OpId::decode(buf)?;
        let op = O::decode(buf)?;
        let prev: BTreeSet<OpId> = BTreeSet::decode(buf)?;
        let strict = bool::decode(buf)?;
        Ok(OpDescriptor::new(id, op)
            .with_prev(prev)
            .with_strict(strict))
    }
}

// ---------------------------------------------------------------------
// Datatype operators and values
// ---------------------------------------------------------------------

/// Implements [`Wire`] for a unit-less enum-like codec by matching tags.
/// (Macro kept local: each datatype has bespoke payloads.)
macro_rules! tagged {
    ($buf:expr, $tag:expr) => {
        $buf.put_u8($tag)
    };
}

mod datatype_impls {
    use super::*;
    use esds_datatypes::{
        BankOp, BankValue, CounterOp, CounterValue, DirectoryOp, DirectoryValue, GSetOp, GSetValue,
        KvOp, KvValue, LogOp, LogValue, QueueOp, QueueValue, RegisterOp, RegisterValue,
    };

    impl Wire for CounterOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                CounterOp::Increment(d) => {
                    tagged!(buf, 0);
                    d.encode(buf);
                }
                CounterOp::Double => tagged!(buf, 1),
                CounterOp::Read => tagged!(buf, 2),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "CounterOp")? {
                0 => Ok(CounterOp::Increment(i64::decode(buf)?)),
                1 => Ok(CounterOp::Double),
                2 => Ok(CounterOp::Read),
                tag => Err(WireError::InvalidTag {
                    context: "CounterOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for CounterValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                CounterValue::Ack => tagged!(buf, 0),
                CounterValue::Count(v) => {
                    tagged!(buf, 1);
                    v.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "CounterValue")? {
                0 => Ok(CounterValue::Ack),
                1 => Ok(CounterValue::Count(i64::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "CounterValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for RegisterOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                RegisterOp::Write(v) => {
                    tagged!(buf, 0);
                    v.encode(buf);
                }
                RegisterOp::Read => tagged!(buf, 1),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "RegisterOp")? {
                0 => Ok(RegisterOp::Write(i64::decode(buf)?)),
                1 => Ok(RegisterOp::Read),
                tag => Err(WireError::InvalidTag {
                    context: "RegisterOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for RegisterValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                RegisterValue::Ack => tagged!(buf, 0),
                RegisterValue::Value(v) => {
                    tagged!(buf, 1);
                    v.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "RegisterValue")? {
                0 => Ok(RegisterValue::Ack),
                1 => Ok(RegisterValue::Value(i64::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "RegisterValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for QueueOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                QueueOp::Enqueue(x) => {
                    tagged!(buf, 0);
                    x.encode(buf);
                }
                QueueOp::Dequeue => tagged!(buf, 1),
                QueueOp::Peek => tagged!(buf, 2),
                QueueOp::Len => tagged!(buf, 3),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "QueueOp")? {
                0 => Ok(QueueOp::Enqueue(i64::decode(buf)?)),
                1 => Ok(QueueOp::Dequeue),
                2 => Ok(QueueOp::Peek),
                3 => Ok(QueueOp::Len),
                tag => Err(WireError::InvalidTag {
                    context: "QueueOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for QueueValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                QueueValue::Ack => tagged!(buf, 0),
                QueueValue::Item(x) => {
                    tagged!(buf, 1);
                    x.encode(buf);
                }
                QueueValue::Size(n) => {
                    tagged!(buf, 2);
                    n.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "QueueValue")? {
                0 => Ok(QueueValue::Ack),
                1 => Ok(QueueValue::Item(Option::decode(buf)?)),
                2 => Ok(QueueValue::Size(u64::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "QueueValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for BankOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                BankOp::Deposit(a) => {
                    tagged!(buf, 0);
                    a.encode(buf);
                }
                BankOp::Withdraw(a) => {
                    tagged!(buf, 1);
                    a.encode(buf);
                }
                BankOp::Balance => tagged!(buf, 2),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "BankOp")? {
                0 => Ok(BankOp::Deposit(u64::decode(buf)?)),
                1 => Ok(BankOp::Withdraw(u64::decode(buf)?)),
                2 => Ok(BankOp::Balance),
                tag => Err(WireError::InvalidTag {
                    context: "BankOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for BankValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                BankValue::Ack => tagged!(buf, 0),
                BankValue::Withdrawn(ok) => {
                    tagged!(buf, 1);
                    ok.encode(buf);
                }
                BankValue::Balance(b) => {
                    tagged!(buf, 2);
                    b.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "BankValue")? {
                0 => Ok(BankValue::Ack),
                1 => Ok(BankValue::Withdrawn(bool::decode(buf)?)),
                2 => Ok(BankValue::Balance(u64::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "BankValue",
                    tag,
                }),
            }
        }
    }

    fn put_usize(buf: &mut impl BufMut, n: usize) {
        put_varint(buf, n as u64);
    }

    fn get_usize(buf: &mut impl Buf, context: &'static str) -> Result<usize, WireError> {
        let v = get_varint(buf)?;
        usize::try_from(v).map_err(|_| WireError::TooLarge {
            context,
            len: v,
            max: u64::MAX,
        })
    }

    impl Wire for GSetOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                GSetOp::Add(x) => {
                    tagged!(buf, 0);
                    x.encode(buf);
                }
                GSetOp::Contains(x) => {
                    tagged!(buf, 1);
                    x.encode(buf);
                }
                GSetOp::Size => tagged!(buf, 2),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "GSetOp")? {
                0 => Ok(GSetOp::Add(u64::decode(buf)?)),
                1 => Ok(GSetOp::Contains(u64::decode(buf)?)),
                2 => Ok(GSetOp::Size),
                tag => Err(WireError::InvalidTag {
                    context: "GSetOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for GSetValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                GSetValue::Ack => tagged!(buf, 0),
                GSetValue::Bool(b) => {
                    tagged!(buf, 1);
                    b.encode(buf);
                }
                GSetValue::Size(n) => {
                    tagged!(buf, 2);
                    put_usize(buf, *n);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "GSetValue")? {
                0 => Ok(GSetValue::Ack),
                1 => Ok(GSetValue::Bool(bool::decode(buf)?)),
                2 => Ok(GSetValue::Size(get_usize(buf, "GSetValue::Size")?)),
                tag => Err(WireError::InvalidTag {
                    context: "GSetValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for LogOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                LogOp::Append(s) => {
                    tagged!(buf, 0);
                    s.encode(buf);
                }
                LogOp::Len => tagged!(buf, 1),
                LogOp::ReadAll => tagged!(buf, 2),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "LogOp")? {
                0 => Ok(LogOp::Append(String::decode(buf)?)),
                1 => Ok(LogOp::Len),
                2 => Ok(LogOp::ReadAll),
                tag => Err(WireError::InvalidTag {
                    context: "LogOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for LogValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                LogValue::Ack => tagged!(buf, 0),
                LogValue::Len(n) => {
                    tagged!(buf, 1);
                    put_usize(buf, *n);
                }
                LogValue::Entries(es) => {
                    tagged!(buf, 2);
                    es.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "LogValue")? {
                0 => Ok(LogValue::Ack),
                1 => Ok(LogValue::Len(get_usize(buf, "LogValue::Len")?)),
                2 => Ok(LogValue::Entries(Vec::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "LogValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for KvOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                KvOp::Put(k, v) => {
                    tagged!(buf, 0);
                    k.encode(buf);
                    v.encode(buf);
                }
                KvOp::Get(k) => {
                    tagged!(buf, 1);
                    k.encode(buf);
                }
                KvOp::Remove(k) => {
                    tagged!(buf, 2);
                    k.encode(buf);
                }
                KvOp::Keys => tagged!(buf, 3),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "KvOp")? {
                0 => Ok(KvOp::Put(String::decode(buf)?, String::decode(buf)?)),
                1 => Ok(KvOp::Get(String::decode(buf)?)),
                2 => Ok(KvOp::Remove(String::decode(buf)?)),
                3 => Ok(KvOp::Keys),
                tag => Err(WireError::InvalidTag {
                    context: "KvOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for KvValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                KvValue::Ack => tagged!(buf, 0),
                KvValue::Value(v) => {
                    tagged!(buf, 1);
                    v.encode(buf);
                }
                KvValue::Removed(b) => {
                    tagged!(buf, 2);
                    b.encode(buf);
                }
                KvValue::Keys(ks) => {
                    tagged!(buf, 3);
                    ks.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "KvValue")? {
                0 => Ok(KvValue::Ack),
                1 => Ok(KvValue::Value(Option::decode(buf)?)),
                2 => Ok(KvValue::Removed(bool::decode(buf)?)),
                3 => Ok(KvValue::Keys(Vec::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "KvValue",
                    tag,
                }),
            }
        }
    }

    impl Wire for DirectoryOp {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                DirectoryOp::CreateName(n) => {
                    tagged!(buf, 0);
                    n.encode(buf);
                }
                DirectoryOp::RemoveName(n) => {
                    tagged!(buf, 1);
                    n.encode(buf);
                }
                DirectoryOp::SetAttr { name, attr, value } => {
                    tagged!(buf, 2);
                    name.encode(buf);
                    attr.encode(buf);
                    value.encode(buf);
                }
                DirectoryOp::Lookup { name, attr } => {
                    tagged!(buf, 3);
                    name.encode(buf);
                    attr.encode(buf);
                }
                DirectoryOp::ListNames => tagged!(buf, 4),
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "DirectoryOp")? {
                0 => Ok(DirectoryOp::CreateName(String::decode(buf)?)),
                1 => Ok(DirectoryOp::RemoveName(String::decode(buf)?)),
                2 => Ok(DirectoryOp::SetAttr {
                    name: String::decode(buf)?,
                    attr: String::decode(buf)?,
                    value: String::decode(buf)?,
                }),
                3 => Ok(DirectoryOp::Lookup {
                    name: String::decode(buf)?,
                    attr: String::decode(buf)?,
                }),
                4 => Ok(DirectoryOp::ListNames),
                tag => Err(WireError::InvalidTag {
                    context: "DirectoryOp",
                    tag,
                }),
            }
        }
    }

    impl Wire for DirectoryValue {
        fn encode(&self, buf: &mut impl BufMut) {
            match self {
                DirectoryValue::Created(ok) => {
                    tagged!(buf, 0);
                    ok.encode(buf);
                }
                DirectoryValue::Removed(ok) => {
                    tagged!(buf, 1);
                    ok.encode(buf);
                }
                DirectoryValue::AttrSet(ok) => {
                    tagged!(buf, 2);
                    ok.encode(buf);
                }
                DirectoryValue::Attr(v) => {
                    tagged!(buf, 3);
                    v.encode(buf);
                }
                DirectoryValue::Names(ns) => {
                    tagged!(buf, 4);
                    ns.encode(buf);
                }
            }
        }
        fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
            match get_u8(buf, "DirectoryValue")? {
                0 => Ok(DirectoryValue::Created(bool::decode(buf)?)),
                1 => Ok(DirectoryValue::Removed(bool::decode(buf)?)),
                2 => Ok(DirectoryValue::AttrSet(bool::decode(buf)?)),
                3 => Ok(DirectoryValue::Attr(Option::decode(buf)?)),
                4 => Ok(DirectoryValue::Names(Vec::decode(buf)?)),
                tag => Err(WireError::InvalidTag {
                    context: "DirectoryValue",
                    tag,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{CounterOp, KvOp};
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire_bytes();
        let back = T::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = &buf[..];
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(!s.has_remaining());
        }
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        let mut s = &buf[..1];
        assert!(matches!(
            get_varint(&mut s),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn varint_overflow_is_an_error() {
        let bytes = [0xffu8; 11];
        let mut s = &bytes[..];
        assert_eq!(get_varint(&mut s), Err(WireError::VarintOverflow));
    }

    #[test]
    fn zigzag_i64_roundtrip_boundaries() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            roundtrip(&v);
        }
        // Small magnitudes stay short.
        assert_eq!((-1i64).to_wire_bytes().len(), 1);
    }

    #[test]
    fn core_ids_roundtrip() {
        roundtrip(&ClientId(7));
        roundtrip(&ReplicaId(2));
        roundtrip(&OpId::new(ClientId(3), u64::MAX));
        roundtrip(&Label::new(99, ReplicaId(1)));
        roundtrip(&LabelSlot::Inf);
        roundtrip(&LabelSlot::from(Label::new(0, ReplicaId(0))));
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = OpDescriptor::new(OpId::new(ClientId(0), 4), CounterOp::Increment(-3))
            .with_prev([OpId::new(ClientId(0), 1), OpId::new(ClientId(2), 0)])
            .with_strict(true);
        roundtrip(&d);
    }

    #[test]
    fn summary_roundtrip() {
        let s = IdSummary::from_ids([
            OpId::new(ClientId(0), 0),
            OpId::new(ClientId(0), 1),
            OpId::new(ClientId(1), 4),
        ]);
        roundtrip(&s);
    }

    #[test]
    fn sharded_id_and_routing_table_roundtrip() {
        roundtrip(&ShardedOpId::new(ClientId(9), u64::MAX));
        let mut t = RoutingTable::uniform(3);
        t.apply(&esds_core::MigrationPlan::add_shard(&t));
        roundtrip(&t);
        // A table naming an out-of-range shard is rejected, not absorbed.
        let mut bytes = Vec::new();
        0u64.encode(&mut bytes); // version
        2u32.encode(&mut bytes); // n_shards
        vec![0u32, 7].encode(&mut bytes); // slot owned by shard 7 of 2
        assert!(RoutingTable::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn kv_op_roundtrip() {
        roundtrip(&KvOp::put("k", "v"));
        roundtrip(&KvOp::get("k"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ClientId(1).to_wire_bytes();
        bytes.push(0xee);
        assert!(matches!(
            ClientId::from_wire_bytes(&bytes),
            Err(WireError::InvalidTag {
                context: "trailing",
                ..
            })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A Vec<u64> claiming 2^40 elements must not allocate.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        assert!(matches!(
            Vec::<u64>::from_wire_bytes(&buf),
            Err(WireError::TooLarge { .. })
        ));
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v: u64) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = &buf[..];
            prop_assert_eq!(get_varint(&mut s).unwrap(), v);
        }

        #[test]
        fn i64_roundtrip(v: i64) {
            roundtrip(&v);
        }

        #[test]
        fn string_roundtrip(s in ".{0,64}") {
            roundtrip(&s);
        }

        #[test]
        fn opid_set_roundtrip(ids in proptest::collection::btree_set((0u32..8, 0u64..100), 0..20)) {
            let set: BTreeSet<OpId> =
                ids.into_iter().map(|(c, s)| OpId::new(ClientId(c), s)).collect();
            roundtrip(&set);
        }

        #[test]
        fn summary_roundtrip_random(ids in proptest::collection::btree_set((0u32..4, 0u64..40), 0..30)) {
            let s: IdSummary =
                ids.into_iter().map(|(c, q)| OpId::new(ClientId(c), q)).collect();
            roundtrip(&s);
        }

        /// Random byte soup never panics the descriptor decoder.
        #[test]
        fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = OpDescriptor::<CounterOp>::from_wire_bytes(&bytes);
        }
    }
}

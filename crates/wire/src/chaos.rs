//! A frame-aware chaos proxy: network fault injection for real sockets.
//!
//! The paper's §9.3 argues the algorithm "cannot distinguish lost messages
//! from merely delayed ones", so loss and duplication never violate
//! safety, and liveness returns once the network behaves (Theorem 9.4).
//! The simulator checks this in virtual time; [`ChaosProxy`] checks it on
//! the real TCP deployment by sitting between nodes and dropping or
//! duplicating *whole frames* with configured probabilities.
//!
//! Dropping at frame granularity (rather than bytes) matters: the
//! algorithm tolerates lost messages, not corrupted streams — a byte-level
//! proxy would desynchronize framing and simply kill connections. Frames
//! are decoded with the same checksummed framing the nodes use and
//! re-encoded verbatim on the way out.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesMut;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::frame::{decode_frame, encode_frame};

/// Fault model for one proxied direction.
#[derive(Copy, Clone, Debug)]
pub struct ChaosConfig {
    /// Probability that a forwarded frame is dropped.
    pub drop_probability: f64,
    /// Probability that a forwarded frame is sent twice.
    pub dup_probability: f64,
    /// Probability that a forwarded frame is *held back* and re-emitted
    /// after the next frame on the connection (adjacent reordering). A
    /// held frame still pending when the connection closes is lost —
    /// which the algorithm tolerates anyway.
    pub reorder_probability: f64,
    /// Added one-way latency: each forwarded frame waits this long before
    /// being written out. The proxy models an in-order slow link, so the
    /// delay also throttles the connection to one frame per `delay`.
    pub delay: Duration,
    /// RNG seed (per-connection streams are derived from it).
    pub seed: u64,
}

impl ChaosConfig {
    /// A proxy that drops `drop_probability` of frames and injects no
    /// other fault.
    pub fn lossy(drop_probability: f64, seed: u64) -> Self {
        ChaosConfig {
            drop_probability,
            dup_probability: 0.0,
            reorder_probability: 0.0,
            delay: Duration::ZERO,
            seed,
        }
    }

    /// Adds duplication on top of an existing fault model.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.dup_probability = p;
        self
    }

    /// Adds adjacent reordering on top of an existing fault model.
    ///
    /// Reordering is safe for requests, responses, and the *snapshot*
    /// gossip encodings (their merges are commutative and monotone), but
    /// it violates the channel assumption of the **delta** gossip
    /// strategies (§10.4 incremental/batched): those ship only what is
    /// new since the last exchange, relying on the in-order delivery TCP
    /// provides, so a stability summary overtaking the batch that
    /// carried its labels breaks Invariant 7.5's bookkeeping. Do not put
    /// a reordering proxy on delta-gossip links — the same rule as "a
    /// dropped delta connection must rewind the watermark"
    /// (`Replica::reset_watermark`), where reordering within a live
    /// connection has no rewind trigger.
    #[must_use]
    pub fn with_reordering(mut self, p: f64) -> Self {
        self.reorder_probability = p;
        self
    }

    /// Adds a per-frame one-way delay on top of an existing fault model.
    #[must_use]
    pub fn with_delay(mut self, d: Duration) -> Self {
        self.delay = d;
        self
    }

    /// The fault model named by the `ESDS_CHAOS_*` environment variables —
    /// how the CI chaos matrix parameterizes the sharded-wire lane:
    ///
    /// * `ESDS_CHAOS_LOSS` — drop probability (default 0)
    /// * `ESDS_CHAOS_DUP` — duplication probability (default 0)
    /// * `ESDS_CHAOS_REORDER` — reorder probability (default 0)
    /// * `ESDS_CHAOS_DELAY_MS` — one-way delay in milliseconds (default 0)
    ///
    /// Unparsable values fall back to the default so a typo degrades to
    /// "no fault", never to a panic inside a test harness.
    pub fn from_env(seed: u64) -> Self {
        fn prob(var: &str) -> f64 {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0)
        }
        let delay_ms: u64 = std::env::var("ESDS_CHAOS_DELAY_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        ChaosConfig {
            drop_probability: prob("ESDS_CHAOS_LOSS"),
            dup_probability: prob("ESDS_CHAOS_DUP"),
            reorder_probability: prob("ESDS_CHAOS_REORDER"),
            delay: Duration::from_millis(delay_ms),
            seed,
        }
    }
}

/// A TCP proxy forwarding framed traffic to `target`, dropping and
/// duplicating frames per [`ChaosConfig`].
///
/// Both directions are proxied; faults are injected on the client→target
/// direction only (requests and gossip), responses pass through — which
/// matches the simulator's fault scripts and keeps assertions about
/// response values deterministic.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
    forwarded: Arc<AtomicU64>,
    duplicated: Arc<AtomicU64>,
    reordered: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds an ephemeral localhost port and starts proxying to `target`.
    ///
    /// # Panics
    ///
    /// Panics if the listener cannot bind or threads cannot spawn.
    pub fn spawn(target: SocketAddr, config: ChaosConfig) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let stop = Arc::new(AtomicBool::new(false));
        let dropped = Arc::new(AtomicU64::new(0));
        let forwarded = Arc::new(AtomicU64::new(0));
        let duplicated = Arc::new(AtomicU64::new(0));
        let reordered = Arc::new(AtomicU64::new(0));
        let conn_seq = AtomicU64::new(0);

        let acceptor = {
            let stop = stop.clone();
            let counters = ChaosCounters {
                dropped: dropped.clone(),
                forwarded: forwarded.clone(),
                duplicated: duplicated.clone(),
                reordered: reordered.clone(),
            };
            std::thread::Builder::new()
                .name("esds-chaos-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let (inbound, _) = match listener.accept() {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(outbound) =
                            TcpStream::connect_timeout(&target, Duration::from_millis(500))
                        else {
                            continue; // target down: drop the connection
                        };
                        let seq = conn_seq.fetch_add(1, Ordering::SeqCst);
                        let rng = SmallRng::seed_from_u64(config.seed.wrapping_add(seq));
                        spawn_pumps(
                            inbound,
                            outbound,
                            config,
                            rng,
                            stop.clone(),
                            counters.clone(),
                        );
                    }
                })
                .expect("spawn chaos acceptor")
        };

        ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            dropped,
            forwarded,
            duplicated,
            reordered,
        }
    }

    /// The address to dial instead of the target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Frames forwarded so far (duplicates counted once).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::SeqCst)
    }

    /// Frames sent twice so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::SeqCst)
    }

    /// Frames emitted out of order so far (each count is one held-back
    /// frame that was overtaken by its successor).
    pub fn reordered(&self) -> u64 {
        self.reordered.load(Ordering::SeqCst)
    }

    /// Registers the proxy's live fault counters into a metrics scope
    /// (conventionally `shard{s}/chaos`): `dropped`, `forwarded`,
    /// `duplicated`, `reordered`. The registry reads the proxy's own
    /// atomics, so snapshots track faults as they happen — no copy, no
    /// extra work on the pump threads.
    pub fn attach_metrics(&self, scope: &esds_obs::Scope) {
        scope.counter_source("dropped", self.dropped.clone());
        scope.counter_source("forwarded", self.forwarded.clone());
        scope.counter_source("duplicated", self.duplicated.clone());
        scope.counter_source("reordered", self.reordered.clone());
    }

    /// Stops accepting new connections. Existing pump threads drain and
    /// exit when either endpoint closes.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// The proxy's shared fault counters.
#[derive(Clone)]
struct ChaosCounters {
    dropped: Arc<AtomicU64>,
    forwarded: Arc<AtomicU64>,
    duplicated: Arc<AtomicU64>,
    reordered: Arc<AtomicU64>,
}

/// Forwards inbound→outbound with frame-level fault injection, and
/// outbound→inbound verbatim.
fn spawn_pumps(
    inbound: TcpStream,
    outbound: TcpStream,
    config: ChaosConfig,
    mut rng: SmallRng,
    stop: Arc<AtomicBool>,
    counters: ChaosCounters,
) {
    let in_read = inbound.try_clone().expect("clone inbound");
    let out_write = outbound.try_clone().expect("clone outbound");
    {
        let stop = stop.clone();
        // A frame held back for reordering; emitted after the next frame
        // on the connection overtakes it — or on the next idle tick, so a
        // held frame at the tail of a burst is merely *delayed*, never
        // silently stranded (the fault model is reordering, not loss).
        let mut held: Option<(crate::frame::FrameKind, Vec<u8>)> = None;
        let _ = std::thread::Builder::new()
            .name("esds-chaos-fwd".into())
            .spawn(move || {
                pump_frames(in_read, out_write, stop, |frame, out| {
                    let Some((frame_kind, payload)) = frame else {
                        // Idle tick: flush anything still held back.
                        if let Some((k, p)) = held.take() {
                            encode_frame(k, &p, out);
                        }
                        return;
                    };
                    if rng.gen_bool(config.drop_probability.clamp(0.0, 1.0)) {
                        counters.dropped.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    if !config.delay.is_zero() {
                        // In-order slow link: every surviving frame waits
                        // the one-way latency before hitting the wire.
                        std::thread::sleep(config.delay);
                    }
                    counters.forwarded.fetch_add(1, Ordering::SeqCst);
                    if held.is_none() && rng.gen_bool(config.reorder_probability.clamp(0.0, 1.0)) {
                        // Hold this frame back; its successor overtakes it.
                        held = Some((frame_kind, payload.to_vec()));
                        return;
                    }
                    encode_frame(frame_kind, payload, out);
                    if rng.gen_bool(config.dup_probability.clamp(0.0, 1.0)) {
                        counters.duplicated.fetch_add(1, Ordering::SeqCst);
                        encode_frame(frame_kind, payload, out);
                    }
                    if let Some((k, p)) = held.take() {
                        counters.reordered.fetch_add(1, Ordering::SeqCst);
                        encode_frame(k, &p, out);
                    }
                });
            });
    }
    let _ = std::thread::Builder::new()
        .name("esds-chaos-back".into())
        .spawn(move || {
            // Reverse direction: verbatim frame forwarding.
            pump_frames(outbound, inbound, stop, |frame, out| {
                if let Some((kind, payload)) = frame {
                    encode_frame(kind, payload, out);
                }
            });
        });
}

/// Reads frames from `src` (buffered, partial-read safe) and lets `f`
/// decide what to write to `dst`: it is called with `Some(frame)` for
/// every decoded frame and with `None` on idle read-timeout ticks (so
/// stateful fault models can flush held-back frames even when the
/// connection goes quiet). Exits on EOF, error, or shutdown.
fn pump_frames(
    mut src: TcpStream,
    mut dst: TcpStream,
    stop: Arc<AtomicBool>,
    mut f: impl FnMut(Option<(crate::frame::FrameKind, &[u8])>, &mut BytesMut),
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 4096];
    let mut out = BytesMut::new();
    loop {
        loop {
            match decode_frame(&mut buf) {
                Ok(Some(frame)) => {
                    out.clear();
                    f(Some((frame.kind, &frame.payload)), &mut out);
                    if !out.is_empty() && dst.write_all(&out).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // corrupt stream: kill the connection
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match src.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                out.clear();
                f(None, &mut out);
                if !out.is_empty() && dst.write_all(&out).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{decode_message, encode_message, HelloId, WireMessage};
    use crate::tcp::{TcpClient, TcpClusterConfig, TcpReplicaNode};
    use esds_core::{ClientId, ReplicaId};
    use esds_datatypes::{Counter, CounterOp, CounterValue};
    use parking_lot::Mutex;

    type Msg = WireMessage<CounterOp, CounterValue>;

    /// Echo server: reads frames, counts them, never replies.
    fn sink_server() -> (SocketAddr, Arc<AtomicU64>, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let count = count.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let Ok((stream, _)) = listener.accept() else {
                        continue;
                    };
                    let count = count.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        pump_count(stream, count, stop);
                    });
                }
            });
        }
        (addr, count, stop)
    }

    fn pump_count(mut s: TcpStream, count: Arc<AtomicU64>, stop: Arc<AtomicBool>) {
        let _ = s.set_read_timeout(Some(Duration::from_millis(20)));
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 1024];
        loop {
            while let Ok(Some(frame)) = decode_frame(&mut buf) {
                let _: Msg = decode_message(&frame).unwrap();
                count.fetch_add(1, Ordering::SeqCst);
            }
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match s.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return,
            }
        }
    }

    #[test]
    fn proxy_drops_about_the_configured_fraction() {
        let (target, received, stop) = sink_server();
        let proxy = ChaosProxy::spawn(target, ChaosConfig::lossy(0.5, 42));
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let total = 400u64;
        let mut out = BytesMut::new();
        for _ in 0..total {
            out.clear();
            encode_message::<CounterOp, CounterValue>(
                &Msg::Hello(HelloId::Client(ClientId(1))),
                &mut out,
            );
            conn.write_all(&out).unwrap();
        }
        // Wait until everything was either dropped or seen by the sink.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if proxy.dropped() + received.load(Ordering::SeqCst) >= total {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let got = received.load(Ordering::SeqCst);
        let dropped = proxy.dropped();
        assert_eq!(dropped + proxy.forwarded(), total);
        assert_eq!(got, proxy.forwarded(), "sink saw every forwarded frame");
        // 50% ± generous tolerance.
        assert!(
            (total / 4..=3 * total / 4).contains(&dropped),
            "dropped {dropped} of {total}"
        );
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(target);
        proxy.shutdown();
    }

    /// Proxies every gossip link of a 3-node cluster with `chaos` and
    /// runs the increments-plus-strict-audit workload; returns the
    /// proxies for fault-counter assertions (already shut down cleanly
    /// is the caller's job via the returned handles).
    fn exercise_gossip_chaos(
        replica: esds_alg::ReplicaConfig,
        chaos: impl Fn(usize) -> ChaosConfig,
    ) -> Vec<ChaosProxy> {
        let mut config = TcpClusterConfig::new(3);
        config.replica = replica;
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let real: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let proxies: Vec<ChaosProxy> = real
            .iter()
            .enumerate()
            .map(|(i, a)| ChaosProxy::spawn(*a, chaos(i)))
            .collect();
        let gossip_table: crate::tcp::AddrTable =
            Arc::new(Mutex::new(proxies.iter().map(|p| p.addr()).collect()));
        let nodes: Vec<TcpReplicaNode<Counter>> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                TcpReplicaNode::spawn(
                    Counter,
                    ReplicaId(i as u32),
                    l,
                    gossip_table.clone(),
                    &config,
                )
            })
            .collect();
        let mut client: TcpClient<Counter> = TcpClient::connect(ClientId(0), real.clone());

        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(client.submit(CounterOp::Increment(1), &[], false));
        }
        for id in &ids {
            assert_eq!(
                client.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }
        // The strict audit needs stability votes to flow through the
        // faulty gossip links — and pins the exact final value.
        let audit = client.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            client.await_response(audit, Duration::from_secs(60)),
            Some(CounterValue::Count(8)),
            "gossip mis-applied under chaos"
        );

        let reps: Vec<_> = nodes.into_iter().map(TcpReplicaNode::shutdown).collect();
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(
            states.iter().all(|s| *s == 8),
            "chaos corrupted the history: {states:?}"
        );
        proxies
    }

    #[test]
    fn duplicated_batched_gossip_does_not_double_apply() {
        // §10.4 batched gossip under heavy duplication of `GossipBatched`
        // frames. The watermark handshake makes a batch idempotent
        // (knowledge summaries are monotone, descriptor deltas are
        // unions), so a duplicated batch must change nothing: the counter
        // converges to *exactly* the sum of the increments — a double-
        // applied delta would overshoot, and the strict audit pins the
        // final value at every replica. (Reordering is deliberately NOT
        // injected here: delta strategies assume the in-order delivery
        // TCP provides — see `ChaosConfig::with_reordering`.)
        let proxies =
            exercise_gossip_chaos(esds_alg::ReplicaConfig::default().with_batched(2), |i| {
                ChaosConfig::lossy(0.0, 900 + i as u64).with_duplication(0.4)
            });
        let dup: u64 = proxies.iter().map(|p| p.duplicated()).sum();
        assert!(
            dup > 0,
            "the proxies should actually have duplicated frames"
        );
        for p in proxies {
            p.shutdown();
        }
    }

    #[test]
    fn reordered_snapshot_gossip_converges() {
        // Adjacent reordering (plus duplication) of full-snapshot gossip
        // frames: snapshot merges are commutative and monotone, so an
        // overtaken frame must change nothing. This is the encoding a
        // reordering network is *allowed* to carry — the delta
        // strategies are not (`ChaosConfig::with_reordering`).
        let proxies = exercise_gossip_chaos(esds_alg::ReplicaConfig::default(), |i| {
            ChaosConfig::lossy(0.0, 1700 + i as u64)
                .with_duplication(0.2)
                .with_reordering(0.3)
        });
        let reord: u64 = proxies.iter().map(|p| p.reordered()).sum();
        assert!(
            reord > 0,
            "the proxies should actually have reordered frames"
        );
        for p in proxies {
            p.shutdown();
        }
    }

    #[test]
    fn cluster_converges_through_lossy_gossip_links() {
        // §9.3 on real sockets: all replica-to-replica gossip passes
        // through proxies dropping 25% of frames; periodic full-snapshot
        // gossip retransmits everything, so strict operations still
        // complete and replicas converge.
        let config = TcpClusterConfig::new(3);
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let real: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let proxies: Vec<ChaosProxy> = real
            .iter()
            .enumerate()
            .map(|(i, a)| ChaosProxy::spawn(*a, ChaosConfig::lossy(0.25, 7 + i as u64)))
            .collect();
        // Nodes dial each other through the proxies...
        let gossip_table: crate::tcp::AddrTable =
            Arc::new(Mutex::new(proxies.iter().map(|p| p.addr()).collect()));
        let nodes: Vec<TcpReplicaNode<Counter>> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                TcpReplicaNode::spawn(
                    Counter,
                    ReplicaId(i as u32),
                    l,
                    gossip_table.clone(),
                    &config,
                )
            })
            .collect();
        // ...while the client talks to its replica directly.
        let mut client: TcpClient<Counter> = TcpClient::connect(ClientId(0), real.clone());

        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(client.submit(CounterOp::Increment(1), &[], false));
        }
        for id in &ids {
            assert_eq!(
                client.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }
        let audit = client.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            client.await_response(audit, Duration::from_secs(60)),
            Some(CounterValue::Count(5)),
            "strict audit completes despite 25% gossip loss"
        );

        let reps: Vec<_> = nodes.into_iter().map(TcpReplicaNode::shutdown).collect();
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(states.iter().all(|s| *s == 5), "diverged: {states:?}");
        let lost: u64 = proxies.iter().map(|p| p.dropped()).sum();
        assert!(lost > 0, "the proxies should actually have dropped gossip");
        for p in proxies {
            p.shutdown();
        }
    }
}

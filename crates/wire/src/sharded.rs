//! The **sharded TCP deployment**: `S` independent replica clusters on
//! real sockets behind shard-aware clients.
//!
//! This is the wire-layer analogue of `esds-runtime`'s `ShardedService`
//! (threads) and `esds-harness`'s `ShardedSimSystem` (virtual time): the
//! keyspace of a [`KeyedDataType`] is partitioned through the shared,
//! versioned [`RoutingTable`] (`key → slot → shard`), and each shard is a
//! complete, unmodified ESDS cluster — its own replicas, its own gossip
//! domain, its own labels and stabilization — here made of
//! [`TcpReplicaNode`]s speaking the framed protocol of this crate.
//!
//! ## The routing-table-version handshake
//!
//! Requests travel as [`FrameKind::ShardedRequest`](crate::FrameKind)
//! frames carrying the client's global [`ShardedOpId`], the per-shard
//! descriptor, **and the table version the client routed under**. A node
//! checks the version against the deployment's shared table *before* the
//! descriptor can reach its replica:
//!
//! * match → the operation is accepted; its eventual answer is a
//!   [`ShardedResponseMsg::Ok`] frame carrying the global id back;
//! * mismatch → the node refuses the descriptor and answers a
//!   [`ShardedResponseMsg::Nak`] carrying the authoritative table. The
//!   client adopts the newer table and **re-routes** the operation —
//!   minting a fresh per-shard identifier on the correct shard — so a
//!   stale view can never read or write the wrong shard's slice.
//!
//! Routing is deterministic from the table, so a version match certifies
//! the shard choice itself; no per-key check is needed.
//!
//! ## Cross-shard `prev` over the wire
//!
//! Exactly the submit-time wait of `runtime::sharded`: different shards
//! hold disjoint slices of the object state, so operations on different
//! shards commute and are mutually oblivious — once a foreign-shard
//! predecessor has been *responded to*, the remaining constraint is
//! vacuous for the state and satisfied for the client-observed order.
//! [`ShardedWireClient::submit`] therefore walks the `prev` DAG with
//! [`esds_core::shard_frontier`]: same-shard predecessors (including
//! those inherited *through* foreign hops) become the local `prev` set,
//! and every foreign predecessor encountered is awaited **over the wire**
//! before the dependent request frame is sent to its shard.
//!
//! ## Whole-object queries: scatter-gather
//!
//! A keyless, mergeable operator (`shard_key` `None`,
//! [`KeyedDataType::merge_gathered`] `Some` — e.g. `KvOp::Keys`) touches
//! every shard's slice, so on a table whose slots span more than one
//! shard the client **scatters** it: one hidden sub-operation per
//! involved shard, each riding the ordinary request/NAK/retry protocol
//! under its own global sequence number, gathered with the data type's
//! merge once every shard has answered. Keyless operators *without* a
//! merge cannot be answered truthfully from one shard's slice;
//! [`ShardedWireClient::try_submit`] refuses them with
//! [`WholeObjectUnsupported`] instead of mis-answering from the home
//! shard (the pre-fix behavior this module is named after).
//!
//! A **strict** gathered query takes a per-shard stability barrier
//! before scattering: the client probes its relay with a
//! [`FrameKind::StabilityQuery`](crate::FrameKind) frame, snapshots the
//! relay's label order as the shard's *answered frontier* (every answer
//! this client has observed from the shard came through that relay, so
//! the relay's order covers it), and polls until the relay knows the
//! whole frontier stable at every replica. Only then is the strict
//! sub-operation sent: the fresh label the relay mints for it exceeds
//! every frontier label, and the frontier's positions are final, so the
//! sub-operation lands after the frontier in the shard's eventual total
//! order — per shard exactly the paper's strict guarantee, with no
//! cross-shard commit protocol. The recorded (frontier, sub) pairs are
//! checkable after the fact against each shard's stable watermark
//! (`esds_spec::check_barrier_cut`).
//!
//! A NAK against any sub-operation re-scatters the *whole* gather under
//! the adopted table (the involved shard set itself may have changed),
//! re-taking barriers when strict — safe because gatherable operators
//! are read-only queries. Cross-shard `prev` composes in both
//! directions: a gathered query's sub-operations each carry the local
//! frontier of the gather's `prev` set, and a later operation naming a
//! gather as `prev` anchors on the gather's sub-operation on its own
//! shard.
//!
//! ## Chaos
//!
//! [`ShardedWireConfig::with_chaos`] puts a [`ChaosProxy`] in front of
//! **every per-shard listener**: all request, response-path, and gossip
//! traffic of every cluster dials through the proxies, so loss, delay,
//! duplication and reordering exercise the cross-shard waits and the
//! version handshake — not just a single group's gossip. Lost request
//! frames are re-sent by the client's retry loop (paper footnote 3);
//! lost gossip is re-shipped by the next tick (§9.3); duplicated batched
//! gossip is absorbed by the watermark handshake (§10.4).
//!
//! Rebalancing *over TCP* (executing a `MigrationPlan` handoff between
//! live clusters) is future work — see `ROADMAP.md`; the version
//! handshake and NAK re-route implemented here are its client-visible
//! half.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use esds_alg::Replica;
use esds_core::{
    ClientId, KeyedDataType, OpDescriptor, OpId, ReplicaId, RoutingTable, ShardedOpId, HOME_SLOT,
};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::codec::Wire;
use crate::frame::decode_frame;
use crate::message::{
    decode_message, encode_message, HelloId, ShardedRequestMsg, ShardedResponseMsg,
    StabilityInfoMsg, WireMessage,
};
use crate::tcp::{AddrTable, NodeObs, ShardCtx, TcpClusterConfig, TcpReplicaNode};

/// How often a client re-sends unanswered requests (paper footnote 3).
const RETRY_EVERY: Duration = Duration::from_millis(50);

/// How long an awaiting client sleeps between pumps. Client sockets are
/// **non-blocking** (a client pumps every shard's connection in turn, so
/// even a short blocking read per idle shard would add S× its timeout to
/// every response); this sleep bounds the resulting spin instead.
const AWAIT_NAP: Duration = Duration::from_micros(200);

/// Configuration of a sharded TCP deployment.
#[derive(Clone, Debug)]
pub struct ShardedWireConfig {
    /// Per-shard cluster configuration (replica count, gossip interval,
    /// gossip encoding, replica state-machine config).
    pub cluster: TcpClusterConfig,
    /// When set, a [`ChaosProxy`] with this fault model fronts every
    /// per-shard listener (per-proxy seeds are derived from the config's
    /// seed, so distinct links get distinct fault streams).
    pub chaos: Option<ChaosConfig>,
    /// How long a submitting client waits for a foreign-shard
    /// predecessor's response before declaring the deployment broken.
    pub cross_shard_wait: Duration,
    /// Metrics registry shared by every node, proxy, and client of the
    /// deployment (node metrics scoped `shard{s}/replica{r}/…`, proxy
    /// counters `shard{s}/chaos{r}/…`, client counters `client{c}/…`).
    /// Defaults to disabled: every handle is a no-op.
    pub obs: esds_obs::MetricsRegistry,
    /// Sampled op-lifecycle tracer shared by nodes and clients.
    /// Defaults to disabled.
    pub tracer: esds_obs::OpTracer,
}

impl ShardedWireConfig {
    /// Defaults: `n_replicas` per shard, 5 ms gossip, plain gossip
    /// encoding, no chaos, 30 s cross-shard wait, metrics and tracing
    /// disabled.
    pub fn new(n_replicas: usize) -> Self {
        ShardedWireConfig {
            cluster: TcpClusterConfig::new(n_replicas),
            chaos: None,
            cross_shard_wait: Duration::from_secs(30),
            obs: esds_obs::MetricsRegistry::disabled(),
            tracer: esds_obs::OpTracer::disabled(),
        }
    }

    /// Fronts every per-shard listener with a chaos proxy.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Overrides the cross-shard predecessor wait (default 30 s).
    #[must_use]
    pub fn with_cross_shard_wait(mut self, d: Duration) -> Self {
        self.cross_shard_wait = d;
        self
    }

    /// Installs a live metrics registry: every node, chaos proxy, and
    /// client of the deployment reports into it, and any node answers
    /// [`WireMessage::MetricsQuery`] frames from it.
    #[must_use]
    pub fn with_obs(mut self, obs: esds_obs::MetricsRegistry) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a sampled op-lifecycle tracer (see `esds_obs::OpTracer`).
    #[must_use]
    pub fn with_tracer(mut self, tracer: esds_obs::OpTracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// One shard's cluster: its nodes, the address table everyone dials
/// (proxy addresses under chaos), and the proxies themselves.
struct WireShard<T: esds_core::SerialDataType> {
    nodes: Vec<TcpReplicaNode<T>>,
    addrs: AddrTable,
    proxies: Vec<ChaosProxy>,
}

/// Aggregate fault counters of a deployment's chaos proxies.
#[derive(Copy, Clone, Default, Debug)]
pub struct ChaosStats {
    /// Frames dropped across all proxies.
    pub dropped: u64,
    /// Frames forwarded (duplicates counted once).
    pub forwarded: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames emitted out of order.
    pub reordered: u64,
}

/// A sharded deployment over real sockets: one TCP cluster per shard,
/// all sharing one versioned routing table.
///
/// # Examples
///
/// ```no_run
/// use std::time::Duration;
/// use esds_datatypes::{KvOp, KvStore, KvValue};
/// use esds_wire::{ShardedWireConfig, ShardedWireService};
///
/// let mut svc = ShardedWireService::launch(KvStore, 2, ShardedWireConfig::new(3));
/// let mut client = svc.client();
/// let put = client.submit(KvOp::put("user:1", "ada"), &[], false);
/// let get = client.submit(KvOp::get("user:1"), &[put], false);
/// assert_eq!(
///     client.await_response(get, Duration::from_secs(10)),
///     Some(KvValue::Value(Some("ada".into())))
/// );
/// svc.shutdown();
/// ```
pub struct ShardedWireService<T: KeyedDataType> {
    table: Arc<Mutex<RoutingTable>>,
    shards: Vec<WireShard<T>>,
    dt: T,
    cross_shard_wait: Duration,
    next_client: u32,
    obs: esds_obs::MetricsRegistry,
    tracer: esds_obs::OpTracer,
}

impl<T> ShardedWireService<T>
where
    T: KeyedDataType + Clone + Send + 'static,
    T::Operator: Wire + Send + Clone,
    T::Value: Wire + Send + Clone,
    T::State: Send,
{
    /// Launches `n_shards` independent clusters on ephemeral localhost
    /// ports under the initial uniform routing table (version 0).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or listeners cannot bind.
    pub fn launch(dt: T, n_shards: u32, config: ShardedWireConfig) -> Self {
        Self::launch_with_table(dt, RoutingTable::uniform(n_shards), config)
    }

    /// Launches one cluster per shard the `table` addresses, serving
    /// `table` as the deployment's authoritative routing state. Lets a
    /// deployment start mid-history (a nonzero version), which is how the
    /// NAK path is exercised against deliberately stale client views.
    ///
    /// # Panics
    ///
    /// Panics if listeners cannot bind.
    pub fn launch_with_table(dt: T, table: RoutingTable, config: ShardedWireConfig) -> Self {
        let n_shards = table.n_shards();
        let table = Arc::new(Mutex::new(table));
        let shards = (0..n_shards)
            .map(|s| Self::launch_shard(&dt, s, &table, &config))
            .collect();
        ShardedWireService {
            table,
            shards,
            dt,
            cross_shard_wait: config.cross_shard_wait,
            next_client: 0,
            obs: config.obs.clone(),
            tracer: config.tracer.clone(),
        }
    }

    /// The deployment's metrics registry (disabled unless installed via
    /// [`ShardedWireConfig::with_obs`]).
    pub fn metrics(&self) -> &esds_obs::MetricsRegistry {
        &self.obs
    }

    fn launch_shard(
        dt: &T,
        shard: u32,
        table: &Arc<Mutex<RoutingTable>>,
        config: &ShardedWireConfig,
    ) -> WireShard<T> {
        let n = config.cluster.n_replicas;
        assert!(n > 0, "each shard needs at least one replica");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind localhost"))
            .collect();
        let real: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect();
        // Under chaos, everyone — clients and peer replicas alike — dials
        // through the proxies, so every frame of the shard's traffic is
        // subject to the fault model.
        let (proxies, dialed): (Vec<ChaosProxy>, Vec<SocketAddr>) = match &config.chaos {
            Some(chaos) => real
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let mut c = *chaos;
                    c.seed = chaos
                        .seed
                        .wrapping_add(u64::from(shard) * 1009)
                        .wrapping_add(i as u64 * 31);
                    let p = ChaosProxy::spawn(*a, c);
                    // The proxy's live fault counters become registry
                    // sources, read at snapshot time.
                    p.attach_metrics(&config.obs.scoped(format!("shard{shard}/chaos{i}")));
                    let addr = p.addr();
                    (p, addr)
                })
                .unzip(),
            None => (Vec::new(), real),
        };
        let addrs: AddrTable = Arc::new(Mutex::new(dialed));
        let globals: Arc<Mutex<HashMap<OpId, ShardedOpId>>> = Arc::new(Mutex::new(HashMap::new()));
        // Every node of this shard reports under `shard{s}/replica{r}`
        // and stamps shard `s` on its trace spans.
        let cluster = config.cluster.clone().with_obs(NodeObs {
            registry: config.obs.clone(),
            prefix: format!("shard{shard}"),
            shard,
            tracer: config.tracer.clone(),
        });
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                TcpReplicaNode::spawn_sharded(
                    dt.clone(),
                    ReplicaId(i as u32),
                    l,
                    addrs.clone(),
                    &cluster,
                    ShardCtx {
                        table: table.clone(),
                        globals: globals.clone(),
                    },
                )
            })
            .collect();
        WireShard {
            nodes,
            addrs,
            proxies,
        }
    }

    /// A snapshot of the deployment's routing table.
    pub fn table(&self) -> RoutingTable {
        self.table.lock().clone()
    }

    /// Number of shard clusters.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate fault counters across every chaos proxy (all zero when
    /// the deployment was launched without chaos).
    pub fn chaos_stats(&self) -> ChaosStats {
        let mut s = ChaosStats::default();
        for shard in &self.shards {
            for p in &shard.proxies {
                s.dropped += p.dropped();
                s.forwarded += p.forwarded();
                s.duplicated += p.duplicated();
                s.reordered += p.reordered();
            }
        }
        s
    }

    /// One shard's **final watermark**: the first node's label order
    /// (shard-local ids) truncated just past the last operation that
    /// node knows is stable at every node. That truncated prefix is the
    /// final prefix of the shard's eventual total order — once an op is
    /// stable everywhere, every node's clock has passed its label, so
    /// nothing can ever be ordered at or before its position again —
    /// and, crucially, it is *gap-free*: tentative operations
    /// interleaved before the fence are included, because their
    /// positions are final even though their own stability knowledge
    /// has not yet completed. This is the `Stabilize` feed for a
    /// streaming audit ([`crate::ShardedWireAuditor`]). `None` if the
    /// node cannot answer within `timeout` (shutting down or wedged).
    pub fn stable_watermark(&self, shard: u32, timeout: Duration) -> Option<Vec<OpId>> {
        let nodes = &self.shards.get(shard as usize)?.nodes;
        let snap = nodes.first()?.stability(timeout)?;
        let mut order = snap.order;
        let solid = order
            .iter()
            .rposition(|id| snap.stable_everywhere.contains(id))
            .map_or(0, |i| i + 1);
        order.truncate(solid);
        Some(order)
    }

    /// A client with the next unused identity and a current view of the
    /// routing table.
    pub fn client(&mut self) -> ShardedWireClient<T> {
        let table = self.table();
        self.client_with_table(table)
    }

    /// A client whose initial routing view is `table` — possibly stale,
    /// in which case its first submission per shard is NAKed and the
    /// client re-routes against the authoritative table. The table must
    /// address no more shards than the deployment has.
    ///
    /// # Panics
    ///
    /// Panics if `table` addresses more shards than the deployment runs.
    pub fn client_with_table(&mut self, table: RoutingTable) -> ShardedWireClient<T> {
        assert!(
            table.n_shards() as usize <= self.shards.len(),
            "client table addresses shards the deployment does not run"
        );
        let id = ClientId(self.next_client);
        self.next_client += 1;
        let links = self
            .shards
            .iter()
            .map(|s| {
                let n = s.nodes.len();
                ShardLink {
                    addrs: s.addrs.clone(),
                    relay: id.0 as usize % n,
                    conn: None,
                    buf: BytesMut::with_capacity(4 * 1024),
                }
            })
            .collect();
        let scope = self.obs.scoped(format!("client{}", id.0));
        ShardedWireClient {
            dt: self.dt.clone(),
            id,
            table,
            links,
            next_global: 0,
            next_local: vec![0; self.shards.len()],
            placements: BTreeMap::new(),
            pending: BTreeSet::new(),
            needs_reroute: BTreeSet::new(),
            values: BTreeMap::new(),
            gathers: BTreeMap::new(),
            scattering: BTreeSet::new(),
            stability_seen: vec![0; self.shards.len()],
            stability_last: vec![None; self.shards.len()],
            metrics_seen: vec![0; self.shards.len()],
            metrics_last: vec![None; self.shards.len()],
            cross_shard_wait: self.cross_shard_wait,
            next_retry: Instant::now() + RETRY_EVERY,
            m_submitted: scope.counter("ops_submitted"),
            m_answered: scope.counter("ops_answered"),
            m_resends: scope.counter("resends"),
            m_naks: scope.counter("nak_reroutes"),
            m_gathers: scope.counter("gathers"),
            m_await_us: scope.histogram("await_us"),
            slot_ops: HashMap::new(),
            scope,
            tracer: self.tracer.clone(),
        }
    }

    /// Stops every node and proxy, returning the final replica state
    /// machines per shard (outer index = shard, inner = replica).
    pub fn shutdown(self) -> Vec<Vec<Replica<T>>> {
        let mut out = Vec::with_capacity(self.shards.len());
        for shard in self.shards {
            out.push(
                shard
                    .nodes
                    .into_iter()
                    .map(TcpReplicaNode::shutdown)
                    .collect(),
            );
            for p in shard.proxies {
                p.shutdown();
            }
        }
        out
    }
}

/// One client↔shard wire: the shard's address table and the lazily
/// dialed connection to this client's relay replica.
struct ShardLink {
    addrs: AddrTable,
    relay: usize,
    conn: Option<(SocketAddr, TcpStream)>,
    buf: BytesMut,
}

/// Where one global operation currently lives.
struct WirePlacement<O> {
    shard: u32,
    local: OpId,
    /// The operator, kept so a NAKed operation can be re-routed.
    op: O,
    /// Global `prev` sequence numbers as submitted.
    prev: Vec<u64>,
    strict: bool,
    /// The per-shard `prev` set the descriptor carried.
    local_prev: Vec<OpId>,
    /// The table version the operation was last routed under.
    version: u64,
    /// When this placement is a hidden sub-operation of a scattered
    /// whole-object query: the owning gather's global sequence. A NAK
    /// never re-routes a sub-operation alone — the whole gather is
    /// re-scattered (the involved shard set may have changed).
    gather: Option<u64>,
}

impl<O: Clone> WirePlacement<O> {
    /// The per-shard descriptor this placement is submitted as — the
    /// single source for both the request frame and the trace exposed to
    /// black-box checkers.
    fn descriptor(&self) -> OpDescriptor<O> {
        OpDescriptor::new(self.local, self.op.clone())
            .with_prev(self.local_prev.iter().copied())
            .with_strict(self.strict)
    }
}

/// A whole-object query scattered across every involved shard.
struct WireGather<O> {
    op: O,
    /// Global `prev` sequence numbers as submitted.
    prev: Vec<u64>,
    strict: bool,
    /// Involved shard → global sequence of its hidden sub-operation.
    subs: BTreeMap<u32, u64>,
    /// The table version of the current scatter.
    version: u64,
    /// Strict only: per involved shard, the relay's answered-frontier
    /// snapshot the sub-operation was barrier-ordered after — the data
    /// [`ShardedWireClient::gather_detail`] exposes for the spec-level
    /// conformance predicate.
    frontier: BTreeMap<u32, Vec<OpId>>,
}

/// A keyless operator without a gather merge was submitted against a
/// routing table whose slots span more than one shard: no single shard
/// holds the whole object, and without [`KeyedDataType::merge_gathered`]
/// the per-shard partial answers cannot be combined. Returned by
/// [`ShardedWireClient::try_submit`] instead of the pre-fix behavior of
/// silently answering from the home shard's slice.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WholeObjectUnsupported;

impl std::fmt::Display for WholeObjectUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "whole-object operator has no gather merge and the routing table spans multiple shards",
        )
    }
}

impl std::error::Error for WholeObjectUnsupported {}

/// A client of a [`ShardedWireService`]: routes `key → slot → shard`
/// through its view of the [`RoutingTable`], speaks the
/// `ShardedRequest`/`ShardedResponse` protocol with each shard's relay
/// replica, re-sends unanswered requests, and adopts newer tables from
/// version-mismatch NAKs (re-routing the refused operation).
///
/// The handle resolves only identifiers it issued itself; `prev` sets
/// may reference any of this client's earlier submissions (a front end
/// only ever learns identifiers it requested, paper §6.2).
pub struct ShardedWireClient<T: KeyedDataType> {
    dt: T,
    id: ClientId,
    table: RoutingTable,
    links: Vec<ShardLink>,
    next_global: u64,
    /// Per-shard local sequence counters (each shard is its own OpId
    /// namespace).
    next_local: Vec<u64>,
    /// Global sequence number → current placement.
    placements: BTreeMap<u64, WirePlacement<T::Operator>>,
    /// Global sequence numbers not yet answered.
    pending: BTreeSet<u64>,
    /// Pending operations refused by a NAK, awaiting re-route.
    needs_reroute: BTreeSet<u64>,
    /// Answers: global sequence → (value, witness).
    values: BTreeMap<u64, (T::Value, Option<Vec<OpId>>)>,
    /// Scattered whole-object queries by global sequence.
    gathers: BTreeMap<u64, WireGather<T::Operator>>,
    /// Gathers currently mid-scatter (re-entrancy guard: scattering can
    /// block on barriers and foreign `prev` waits, which pump and may
    /// trigger repair of *other* stale gathers, but never of the one
    /// already being scattered).
    scattering: BTreeSet<u64>,
    /// Per shard: how many [`StabilityInfoMsg`] replies have arrived,
    /// and the latest one — the barrier loop sends a fresh probe and
    /// waits for the counter to advance, so it never reads a stale
    /// snapshot.
    stability_seen: Vec<u64>,
    stability_last: Vec<Option<StabilityInfoMsg>>,
    /// Per shard: how many [`WireMessage::MetricsInfo`] replies have
    /// arrived, and the latest one — the same probe-and-advance protocol
    /// as stability, so a poll never reads a stale snapshot.
    metrics_seen: Vec<u64>,
    metrics_last: Vec<Option<esds_obs::MetricsSnapshot>>,
    cross_shard_wait: Duration,
    next_retry: Instant,
    m_submitted: esds_obs::Counter,
    m_answered: esds_obs::Counter,
    m_resends: esds_obs::Counter,
    m_naks: esds_obs::Counter,
    m_gathers: esds_obs::Counter,
    /// Bounded (log-bucketed) histogram of await-to-answer times — the
    /// fixed-footprint service-side replacement for the simulator's
    /// exact, unbounded `esds_sim::Histogram`.
    m_await_us: esds_obs::Histo,
    /// Lazily created per-slot operation counters (`slot{n}/ops`).
    slot_ops: HashMap<u16, esds_obs::Counter>,
    scope: esds_obs::Scope,
    tracer: esds_obs::OpTracer,
}

impl<T> ShardedWireClient<T>
where
    T: KeyedDataType,
    T::Operator: Wire + Clone,
    T::Value: Wire + Clone,
{
    /// The client identity (mints both global and per-shard ids).
    pub fn client(&self) -> ClientId {
        self.id
    }

    /// The routing-table version this client currently routes under.
    pub fn table_version(&self) -> u64 {
        self.table.version()
    }

    /// The shard `id` is currently placed on, if issued by this handle.
    /// `None` for a scattered whole-object query — it lives on every
    /// involved shard; see [`Self::gather_detail`].
    pub fn shard_of(&self, id: ShardedOpId) -> Option<u32> {
        self.placement(id).map(|p| p.shard)
    }

    /// The table version `id` was last routed (for a gather: scattered)
    /// under.
    pub fn routed_version(&self, id: ShardedOpId) -> Option<u64> {
        if id.client() != self.id {
            return None;
        }
        self.placements
            .get(&id.seq())
            .map(|p| p.version)
            .or_else(|| self.gathers.get(&id.seq()).map(|g| g.version))
    }

    /// For a scattered whole-object query: the per-shard sub-operation
    /// ids and — when strict — the answered-frontier snapshot each
    /// sub-operation was barrier-ordered after. Together these form the
    /// `esds_spec::ShardBarrier` records of the conformance predicate
    /// (`esds_spec::check_barrier_cut`): each shard's eventual order
    /// must place the sub-operation after its whole frontier. `None`
    /// for keyed operations and ids this handle did not issue.
    #[allow(clippy::type_complexity)]
    pub fn gather_detail(
        &self,
        id: ShardedOpId,
    ) -> Option<(BTreeMap<u32, OpId>, BTreeMap<u32, Vec<OpId>>)> {
        if id.client() != self.id {
            return None;
        }
        let g = self.gathers.get(&id.seq())?;
        let subs = g
            .subs
            .iter()
            .map(|(shard, sub)| (*shard, self.placements[sub].local))
            .collect();
        Some((subs, g.frontier.clone()))
    }

    /// For an *answered* scattered whole-object query: the per-shard
    /// trace its hidden sub-operations contributed — `(shard,
    /// descriptor, value, witness)` in ascending shard order. Each
    /// sub-operation is an ordinary request of its shard answered with
    /// that shard's slice, so a black-box per-shard checker records
    /// these exactly like keyed traffic. `None` for keyed operations,
    /// gathers with unanswered sub-operations, and ids this handle did
    /// not issue.
    #[allow(clippy::type_complexity)]
    pub fn gather_sub_trace(
        &self,
        id: ShardedOpId,
    ) -> Option<Vec<(u32, OpDescriptor<T::Operator>, T::Value, Option<Vec<OpId>>)>> {
        if id.client() != self.id {
            return None;
        }
        let g = self.gathers.get(&id.seq())?;
        g.subs
            .iter()
            .map(|(shard, sub)| {
                let (v, w) = self.values.get(sub)?;
                Some((
                    *shard,
                    self.placements[sub].descriptor(),
                    v.clone(),
                    w.clone(),
                ))
            })
            .collect()
    }

    /// The per-shard descriptor `id` is currently submitted as (shard,
    /// local id, same-shard `prev`, strictness) — what a black-box trace
    /// checker records as the shard's `request(x)` action. Built by the
    /// same constructor as the request frame's descriptor, so the
    /// recorded trace cannot diverge from what was sent.
    pub fn local_descriptor(&self, id: ShardedOpId) -> Option<(u32, OpDescriptor<T::Operator>)> {
        self.placement(id).map(|p| (p.shard, p.descriptor()))
    }

    /// The value previously returned for `id`, if answered.
    pub fn value_of(&self, id: ShardedOpId) -> Option<&T::Value> {
        self.answer(id).map(|(v, _)| v)
    }

    /// The witness the response carried, if any (requires the deployment
    /// to run with `ReplicaConfig::with_witness`).
    pub fn witness_of(&self, id: ShardedOpId) -> Option<&Vec<OpId>> {
        self.answer(id).and_then(|(_, w)| w.as_ref())
    }

    fn placement(&self, id: ShardedOpId) -> Option<&WirePlacement<T::Operator>> {
        (id.client() == self.id)
            .then(|| self.placements.get(&id.seq()))
            .flatten()
    }

    fn answer(&self, id: ShardedOpId) -> Option<&(T::Value, Option<Vec<OpId>>)> {
        (id.client() == self.id)
            .then(|| self.values.get(&id.seq()))
            .flatten()
    }

    /// Submits an operation and returns its global id. Single-key
    /// operators route to the shard owning their key under this client's
    /// table view; a keyless, mergeable operator on a table spanning
    /// more than one shard is **scattered** across every involved shard
    /// and gathered with [`KeyedDataType::merge_gathered`] (strict
    /// gathers take a per-shard stability barrier first — see the
    /// module docs). Foreign-shard `prev` entries are awaited over the
    /// wire (blocking, up to the configured cross-shard timeout) before
    /// request frames are sent; same-shard entries — including those
    /// inherited through foreign hops, and the same-shard sub-operation
    /// of a gathered predecessor — ride each shard's own protocol as the
    /// local `prev` set.
    ///
    /// # Panics
    ///
    /// Panics if `prev` names an id this handle did not issue, if a
    /// foreign predecessor or barrier stays unanswered past the
    /// cross-shard timeout (the deployment is then considered broken —
    /// the same situation in which
    /// [`ShardedWireClient::await_response`] would return `None`), or if
    /// the operation is a whole-object query the deployment cannot
    /// gather — use [`Self::try_submit`] to handle that case as a value.
    pub fn submit(&mut self, op: T::Operator, prev: &[ShardedOpId], strict: bool) -> ShardedOpId {
        self.try_submit(op, prev, strict)
            .unwrap_or_else(|e| panic!("{e}; use try_submit to handle this case"))
    }

    /// Like [`Self::submit`], but a keyless operator without a gather
    /// merge on a multi-shard table is refused with
    /// [`WholeObjectUnsupported`] instead of panicking (answering it
    /// from one shard's slice would silently drop every other shard's
    /// contribution).
    ///
    /// # Panics
    ///
    /// As [`Self::submit`], except for the un-gatherable whole-object
    /// case, which is returned as an error.
    pub fn try_submit(
        &mut self,
        op: T::Operator,
        prev: &[ShardedOpId],
        strict: bool,
    ) -> Result<ShardedOpId, WholeObjectUnsupported> {
        for g in prev {
            assert!(
                g.client() == self.id,
                "prev {g} was not issued by this client handle"
            );
            assert!(
                self.placements.contains_key(&g.seq()) || self.gathers.contains_key(&g.seq()),
                "prev {g} was never submitted via this handle"
            );
        }
        self.pump();
        let seqs: Vec<u64> = prev.iter().map(|g| g.seq()).collect();
        if self.dt.shard_key(&op).is_none() && self.table.involved_shards().len() > 1 {
            if !self.dt.is_gatherable(&op) {
                return Err(WholeObjectUnsupported);
            }
            return Ok(self.submit_gather(op, seqs, strict));
        }
        // Keyed — or keyless on a table whose slots all live on one
        // shard, where the home-slot owner holds the whole object and
        // legacy routing is exact.
        Ok(self.submit_keyed(op, seqs, strict))
    }

    fn submit_keyed(&mut self, op: T::Operator, seqs: Vec<u64>, strict: bool) -> ShardedOpId {
        let slot = self.slot_of_op(&op);
        let shard = self.table.shard_of_slot(slot);
        let version = self.table.version();
        let local_prev = self.local_frontier(&seqs, shard);
        let local = OpId::new(self.id, self.next_local[shard as usize]);
        self.next_local[shard as usize] += 1;
        let seq = self.next_global;
        self.next_global += 1;
        self.m_submitted.inc();
        if self.scope.is_enabled() {
            self.slot_ops
                .entry(slot)
                .or_insert_with(|| self.scope.counter(&format!("slot{slot}/ops")))
                .inc();
        }
        if self.tracer.is_enabled() {
            let gid = ShardedOpId::new(self.id, seq).to_string();
            self.tracer.emit(shard, &gid, esds_obs::Stage::Submit);
            self.tracer.emit(shard, &gid, esds_obs::Stage::Route);
        }
        self.placements.insert(
            seq,
            WirePlacement {
                shard,
                local,
                op,
                prev: seqs,
                strict,
                local_prev,
                version,
                gather: None,
            },
        );
        self.pending.insert(seq);
        self.send_placed(seq);
        ShardedOpId::new(self.id, seq)
    }

    fn submit_gather(&mut self, op: T::Operator, prev: Vec<u64>, strict: bool) -> ShardedOpId {
        let gid = self.next_global;
        self.next_global += 1;
        self.m_submitted.inc();
        self.m_gathers.inc();
        if self.tracer.is_enabled() {
            let gs = ShardedOpId::new(self.id, gid).to_string();
            // A gather has no single home shard; its spans carry shard 0
            // and the per-shard sub-operations trace under their own ids.
            self.tracer.emit(0, &gs, esds_obs::Stage::Submit);
        }
        let version = self.table.version();
        self.gathers.insert(
            gid,
            WireGather {
                op,
                prev,
                strict,
                subs: BTreeMap::new(),
                version,
                frontier: BTreeMap::new(),
            },
        );
        self.scatter(gid);
        ShardedOpId::new(self.id, gid)
    }

    /// (Re-)scatters gather `gid` under the current table: one hidden
    /// sub-operation per involved shard, preceded by a per-shard
    /// stability barrier when the gather is strict. Blocking (barriers
    /// and foreign `prev` waits run here), so never called from the
    /// non-blocking pump — a NAKed sub-operation waits in
    /// `needs_reroute` until [`Self::repair_gathers`] runs in an await
    /// loop.
    fn scatter(&mut self, gid: u64) {
        if !self.scattering.insert(gid) {
            return;
        }
        let deadline = Instant::now() + self.cross_shard_wait;
        let version = self.table.version();
        let involved = self.table.involved_shards();
        let (op, prev, strict) = {
            let g = &self.gathers[&gid];
            (g.op.clone(), g.prev.clone(), g.strict)
        };
        // Strict: barrier first. Snapshot each involved shard's answered
        // frontier (the relay's order) and wait until the shard knows it
        // stable everywhere; the fresh sub-operation label the relay
        // then mints exceeds every frontier label, whose positions are
        // final — so the sub-operation is ordered after everything any
        // answer this client observed could reflect.
        let mut frontier = BTreeMap::new();
        if strict {
            for s in &involved {
                let f = self.take_barrier(*s, deadline).unwrap_or_else(|| {
                    panic!(
                        "barrier on shard {s} did not stabilize within {:?}",
                        self.cross_shard_wait
                    )
                });
                frontier.insert(*s, f);
            }
        }
        // Retire the previous scatter (version-refused sub-operations):
        // once out of `pending`, straggler NAKs for them are ignored.
        let old: Vec<u64> = self.gathers[&gid].subs.values().copied().collect();
        for s in old {
            self.pending.remove(&s);
            self.needs_reroute.remove(&s);
        }
        let mut subs = BTreeMap::new();
        if self.tracer.is_enabled() {
            let gs = ShardedOpId::new(self.id, gid).to_string();
            self.tracer.emit(0, &gs, esds_obs::Stage::GatherFanout);
        }
        for shard in involved {
            let local_prev = self.local_frontier(&prev, shard);
            let local = OpId::new(self.id, self.next_local[shard as usize]);
            self.next_local[shard as usize] += 1;
            let sub = self.next_global;
            self.next_global += 1;
            self.placements.insert(
                sub,
                WirePlacement {
                    shard,
                    local,
                    op: op.clone(),
                    prev: prev.clone(),
                    strict,
                    local_prev,
                    version,
                    gather: Some(gid),
                },
            );
            self.pending.insert(sub);
            subs.insert(shard, sub);
        }
        let sub_seqs: Vec<u64> = subs.values().copied().collect();
        {
            let g = self.gathers.get_mut(&gid).expect("gathered");
            g.subs = subs;
            g.version = version;
            g.frontier = frontier;
        }
        for sub in sub_seqs {
            self.send_placed(sub);
        }
        self.scattering.remove(&gid);
    }

    /// The same-shard `prev` frontier of `seqs` — the shared
    /// [`esds_core::gather_frontier`] walk. Keyed predecessors anchor on
    /// their placement; a gathered predecessor anchors on its
    /// sub-operation on `shard`. Every foreign (or stale-scattered)
    /// predecessor encountered is awaited over the wire before the walk
    /// descends through it: once answered, its constraint is satisfied
    /// for the client-observed order and vacuous for disjoint state.
    fn local_frontier(&mut self, seqs: &[u64], shard: u32) -> Vec<OpId> {
        let wait = self.cross_shard_wait;
        esds_core::gather_frontier(seqs, shard, |seq| {
            if self.gathers.contains_key(&seq) {
                let (gprev, sub_seqs, must_wait) = {
                    let g = &self.gathers[&seq];
                    let stale = g.version != self.table.version();
                    let spans = g.subs.contains_key(&shard);
                    (
                        g.prev.clone(),
                        g.subs.clone(),
                        (stale || !spans) && !self.values.contains_key(&seq),
                    )
                };
                let sub_seqs = if must_wait {
                    // A stale gather is re-scattered (and an answered one
                    // settled) inside the await loop; re-read the subs
                    // afterwards so the anchor is the live sub-operation.
                    let answered = self.await_seq(seq, wait);
                    assert!(
                        answered,
                        "cross-shard prev {} unanswered after {:?}",
                        ShardedOpId::new(self.id, seq),
                        wait
                    );
                    self.gathers[&seq].subs.clone()
                } else {
                    sub_seqs
                };
                let subs: Vec<(u32, OpId)> = sub_seqs
                    .iter()
                    .map(|(s, sub)| (*s, self.placements[sub].local))
                    .collect();
                (subs, gprev)
            } else {
                let (p_shard, p_local, p_prev) = {
                    let p = &self.placements[&seq];
                    (p.shard, p.local, p.prev.clone())
                };
                if p_shard != shard && !self.values.contains_key(&seq) {
                    let answered = self.await_seq(seq, wait);
                    assert!(
                        answered,
                        "cross-shard prev {} unanswered after {:?}",
                        ShardedOpId::new(self.id, seq),
                        wait
                    );
                }
                (vec![(p_shard, p_local)], p_prev)
            }
        })
    }

    /// Waits until `id` is answered or `timeout` elapses, re-sending
    /// unanswered requests every 50 ms and processing NAK re-routes
    /// (for a scattered whole-object query: re-scattering it).
    pub fn await_response(&mut self, id: ShardedOpId, timeout: Duration) -> Option<T::Value> {
        if id.client() != self.id
            || !(self.placements.contains_key(&id.seq()) || self.gathers.contains_key(&id.seq()))
        {
            return None;
        }
        if self.await_seq(id.seq(), timeout) {
            return self.values.get(&id.seq()).map(|(v, _)| v.clone());
        }
        None
    }

    fn await_seq(&mut self, seq: u64, timeout: Duration) -> bool {
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            if self.values.contains_key(&seq) {
                if self.m_await_us.is_enabled() {
                    self.m_await_us.record(start.elapsed().as_micros() as u64);
                }
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            self.maybe_retry();
            self.pump();
            self.repair_gathers();
            std::thread::sleep(AWAIT_NAP);
        }
    }

    /// Re-scatters every unanswered gather whose scatter predates the
    /// current table (a sub-operation was NAKed and the adopted table
    /// may involve a different shard set). Runs only from blocking await
    /// loops — a re-scatter can take barriers and wait on predecessors —
    /// and never touches a gather already mid-scatter.
    fn repair_gathers(&mut self) {
        let stale: Vec<u64> = self
            .gathers
            .iter()
            .filter(|(gid, g)| {
                !self.scattering.contains(gid)
                    && !self.values.contains_key(gid)
                    && !g.subs.is_empty()
                    && g.version != self.table.version()
            })
            .map(|(gid, _)| *gid)
            .collect();
        for gid in stale {
            let current = self.gathers[&gid].version == self.table.version();
            if !current && !self.values.contains_key(&gid) {
                self.scatter(gid);
            }
        }
    }

    /// Merges every gather whose sub-operations have all been answered
    /// under the current table, caching the merged value at the gather's
    /// own global sequence.
    fn settle_gathers(&mut self) {
        let ready: Vec<u64> = self
            .gathers
            .iter()
            .filter(|(gid, g)| {
                !self.values.contains_key(gid)
                    && g.version == self.table.version()
                    && !g.subs.is_empty()
                    && g.subs.values().all(|s| self.values.contains_key(s))
            })
            .map(|(gid, _)| *gid)
            .collect();
        for gid in ready {
            let (op, parts): (T::Operator, Vec<T::Value>) = {
                let g = &self.gathers[&gid];
                // BTreeMap iteration gives ascending shard order — the
                // part order `merge_gathered` documents.
                (
                    g.op.clone(),
                    g.subs.values().map(|s| self.values[s].0.clone()).collect(),
                )
            };
            let merged = self
                .dt
                .merge_gathered(&op, parts)
                .expect("scattered operators are gatherable");
            self.values.insert(gid, (merged, None));
        }
    }

    /// The barrier on one shard: snapshot the relay's answered frontier,
    /// then poll fresh stability probes until the relay knows the whole
    /// frontier stable at every replica. `None` past `deadline`.
    fn take_barrier(&mut self, shard: u32, deadline: Instant) -> Option<Vec<OpId>> {
        let frontier = self.fresh_stability(shard, deadline)?.order;
        loop {
            let info = self.fresh_stability(shard, deadline)?;
            let stable: BTreeSet<OpId> = info.stable_everywhere.iter().copied().collect();
            if frontier.iter().all(|id| stable.contains(id)) {
                return Some(frontier);
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Probes `shard`'s relay with a `StabilityQuery` and waits for a
    /// reply *newer than the probe* (the per-shard receive counter
    /// advances), re-sending every retry period — probes and replies are
    /// as losable as any other frame. `None` past `deadline`.
    fn fresh_stability(&mut self, shard: u32, deadline: Instant) -> Option<StabilityInfoMsg> {
        let baseline = self.stability_seen[shard as usize];
        let mut next_probe = Instant::now();
        loop {
            if Instant::now() >= next_probe {
                self.send_stability_query(shard);
                next_probe = Instant::now() + RETRY_EVERY;
            }
            self.maybe_retry();
            self.pump();
            if self.stability_seen[shard as usize] > baseline {
                return self.stability_last[shard as usize].clone();
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(AWAIT_NAP);
        }
    }

    /// Polls `shard`'s relay node for its **process-wide** metrics
    /// snapshot (a [`WireMessage::MetricsQuery`] frame), waiting up to
    /// `timeout` for a reply *newer than the probe* — probes and replies
    /// ride the same lossy links as everything else, so the probe is
    /// re-sent every retry period. `None` past the timeout. A node
    /// running with metrics disabled answers an empty snapshot.
    pub fn metrics_snapshot(
        &mut self,
        shard: u32,
        timeout: Duration,
    ) -> Option<esds_obs::MetricsSnapshot> {
        let deadline = Instant::now() + timeout;
        let baseline = self.metrics_seen[shard as usize];
        let mut next_probe = Instant::now();
        loop {
            if Instant::now() >= next_probe {
                let msg: WireMessage<T::Operator, T::Value> = WireMessage::MetricsQuery;
                let mut out = BytesMut::new();
                encode_message(&msg, &mut out);
                let id = self.id;
                self.links[shard as usize].send(id, &out, true);
                next_probe = Instant::now() + RETRY_EVERY;
            }
            self.maybe_retry();
            self.pump();
            if self.metrics_seen[shard as usize] > baseline {
                return self.metrics_last[shard as usize].clone();
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(AWAIT_NAP);
        }
    }

    /// Sends a `StabilityQuery` frame to `shard`'s relay. The Hello
    /// preamble is refreshed with it: the reply travels through the
    /// node's registered-clients map, so registration must have arrived.
    fn send_stability_query(&mut self, shard: u32) {
        let msg: WireMessage<T::Operator, T::Value> = WireMessage::StabilityQuery;
        let mut out = BytesMut::new();
        encode_message(&msg, &mut out);
        let id = self.id;
        self.links[shard as usize].send(id, &out, true);
    }

    /// The slot an operator is attributed to (keyless → [`HOME_SLOT`]).
    fn slot_of_op(&self, op: &T::Operator) -> u16 {
        match self.dt.shard_key(op) {
            Some(k) => self.table.slot_of_key(k),
            None => HOME_SLOT,
        }
    }

    /// Re-sends every unanswered request when the retry period lapses
    /// (paper footnote 3 — requests, like gossip, may be lost).
    fn maybe_retry(&mut self) {
        if Instant::now() < self.next_retry {
            return;
        }
        self.next_retry = Instant::now() + RETRY_EVERY;
        let due: Vec<u64> = self
            .pending
            .iter()
            .copied()
            .filter(|s| !self.needs_reroute.contains(s))
            .collect();
        // Retries refresh the Hello preamble: under chaos the original
        // Hello may have been dropped while the connection stayed up, in
        // which case the node is answering an unregistered client into
        // the void. Re-registering is idempotent and a Hello frame is a
        // few bytes, so every retry tick repairs registration for free.
        for seq in due {
            self.m_resends.inc();
            self.send_placed_refreshing(seq, true);
        }
        let rerouted: Vec<u64> = self.needs_reroute.iter().copied().collect();
        for seq in rerouted {
            if self.try_reroute(seq) {
                self.needs_reroute.remove(&seq);
            }
        }
    }

    /// Encodes and sends the request frame for a placed operation to its
    /// shard's relay. Failures are absorbed — the retry loop re-sends.
    fn send_placed(&mut self, seq: u64) {
        self.send_placed_refreshing(seq, false);
    }

    /// Like [`Self::send_placed`]; `refresh_hello` additionally repeats
    /// the Hello preamble on an already-open connection (see
    /// [`Self::maybe_retry`]).
    fn send_placed_refreshing(&mut self, seq: u64, refresh_hello: bool) {
        let p = &self.placements[&seq];
        let msg: WireMessage<T::Operator, T::Value> =
            WireMessage::ShardedRequest(ShardedRequestMsg {
                version: p.version,
                global: ShardedOpId::new(self.id, seq),
                desc: p.descriptor(),
            });
        let mut out = BytesMut::new();
        encode_message(&msg, &mut out);
        let shard = p.shard as usize;
        let id = self.id;
        self.links[shard].send(id, &out, refresh_hello);
    }

    /// Re-routes a NAK-refused operation under the (newer) adopted
    /// table. Returns false — leaving the operation queued — while a
    /// now-foreign predecessor is still unanswered; the next retry tick
    /// tries again, so a re-route can never deadlock the pump.
    fn try_reroute(&mut self, seq: u64) -> bool {
        if self.values.contains_key(&seq) {
            return true; // answered in the meantime; nothing to move
        }
        if self.placements[&seq].gather.is_some() {
            // A gather's sub-operation is never re-routed alone: the
            // adopted table may involve a different shard *set*, and a
            // strict re-scatter must re-take barriers — blocking work
            // the pump cannot do. Leave it queued; `repair_gathers`
            // re-scatters the whole gather from the await loop.
            return false;
        }
        if self.placements[&seq].version == self.table.version() {
            // Already re-routed under the current table: this NAK is a
            // straggler or a duplicate (lossy/duplicating links retry
            // the refused frame, and every copy is NAKed). Minting a
            // *new* per-shard id here would submit the operation twice —
            // the shard dedupes by id, so a second id is a second
            // application. Just re-send the current placement.
            self.send_placed(seq);
            return true;
        }
        let (op, prev) = {
            let p = &self.placements[&seq];
            (p.op.clone(), p.prev.clone())
        };
        let slot = self.slot_of_op(&op);
        let shard = self.table.shard_of_slot(slot);
        // Every foreign predecessor must already be answered — and every
        // gathered predecessor either answered or freshly scattered
        // under the current table (anchoring on a version-refused
        // sub-operation would wait on an id the shard never accepted).
        // A re-route happens inside the pump, so it must not block.
        let mut ready = true;
        let local_prev: Vec<OpId> = esds_core::gather_frontier(&prev, shard, |s| {
            if let Some(g) = self.gathers.get(&s) {
                let answered = self.values.contains_key(&s);
                if !answered && (g.version != self.table.version() || !g.subs.contains_key(&shard))
                {
                    ready = false;
                }
                let subs: Vec<(u32, OpId)> = g
                    .subs
                    .iter()
                    .map(|(sh, sub)| (*sh, self.placements[sub].local))
                    .collect();
                (subs, g.prev.clone())
            } else {
                let p = &self.placements[&s];
                if p.shard != shard && !self.values.contains_key(&s) {
                    ready = false;
                }
                (vec![(p.shard, p.local)], p.prev.clone())
            }
        });
        if !ready {
            return false;
        }
        let local = OpId::new(self.id, self.next_local[shard as usize]);
        self.next_local[shard as usize] += 1;
        let version = self.table.version();
        let p = self.placements.get_mut(&seq).expect("placed");
        p.shard = shard;
        p.local = local;
        p.local_prev = local_prev;
        p.version = version;
        self.send_placed(seq);
        true
    }

    /// Drains whatever response frames have arrived on any shard link.
    fn pump(&mut self) {
        let mut naks: Vec<(u64, RoutingTable)> = Vec::new();
        for (shard, link) in self.links.iter_mut().enumerate() {
            link.read_into_buf();
            loop {
                match decode_frame(&mut link.buf) {
                    Ok(Some(frame)) => {
                        let Ok(msg) = decode_message::<T::Operator, T::Value>(&frame) else {
                            link.conn = None;
                            link.buf.clear();
                            break;
                        };
                        match msg {
                            WireMessage::ShardedResponse(ShardedResponseMsg::Ok {
                                global,
                                resp,
                            }) if global.client() == self.id => {
                                self.pending.remove(&global.seq());
                                self.needs_reroute.remove(&global.seq());
                                // Count only first deliveries: a duplicating
                                // link may replay the response frame, and
                                // `ops_answered` must stay ≤ `ops_submitted`.
                                if let std::collections::btree_map::Entry::Vacant(e) =
                                    self.values.entry(global.seq())
                                {
                                    e.insert((resp.value, resp.witness));
                                    self.m_answered.inc();
                                    self.tracer.emit(
                                        shard as u32,
                                        &global.to_string(),
                                        esds_obs::Stage::Answer,
                                    );
                                }
                            }
                            WireMessage::ShardedResponse(ShardedResponseMsg::Nak {
                                global,
                                table,
                            }) if global.client() == self.id => {
                                self.m_naks.inc();
                                self.tracer.emit(
                                    shard as u32,
                                    &global.to_string(),
                                    esds_obs::Stage::NakReroute,
                                );
                                naks.push((global.seq(), table));
                            }
                            WireMessage::StabilityInfo(info) => {
                                self.stability_last[shard] = Some(info);
                                self.stability_seen[shard] += 1;
                            }
                            WireMessage::MetricsInfo(snap) => {
                                self.metrics_last[shard] = Some(snap);
                                self.metrics_seen[shard] += 1;
                            }
                            _ => {} // other clients' frames / plain frames: not ours
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        link.conn = None;
                        link.buf.clear();
                        break;
                    }
                }
            }
        }
        for (seq, table) in naks {
            if table.version() > self.table.version() {
                self.table = table;
            }
            if self.pending.contains(&seq) && !self.try_reroute(seq) {
                self.needs_reroute.insert(seq);
            }
        }
        self.settle_gathers();
    }
}

impl ShardLink {
    /// Ensures a live connection to the relay (Hello preamble included)
    /// and writes `frame_bytes`; failures clear the slot for a retry.
    /// With `refresh_hello`, the Hello preamble is repeated even on an
    /// already-open connection — registration at the node is idempotent,
    /// and under a lossy link the dial-time Hello may never have arrived
    /// (the node then answers an unregistered client into the void, and
    /// nothing else would ever re-register on the still-healthy socket).
    fn send(&mut self, client: ClientId, frame_bytes: &[u8], refresh_hello: bool) {
        let addr = self.addrs.lock()[self.relay];
        if self.conn.as_ref().is_some_and(|(d, _)| *d != addr) {
            self.conn = None;
        }
        let mut hello = BytesMut::new();
        // Hello frames carry no operator/value payloads, so the
        // concrete message type parameters are irrelevant here.
        encode_message::<u64, u64>(&WireMessage::Hello(HelloId::Client(client)), &mut hello);
        if self.conn.is_none() {
            let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
                return;
            };
            let _ = s.set_nodelay(true);
            let _ = s.set_nonblocking(true);
            if s.write_all(&hello).is_err() {
                return;
            }
            self.buf.clear();
            self.conn = Some((addr, s));
        } else if refresh_hello {
            if let Some((_, s)) = &mut self.conn {
                if s.write_all(&hello).is_err() {
                    self.conn = None;
                    return;
                }
            }
        }
        if let Some((_, s)) = &mut self.conn {
            if s.write_all(frame_bytes).is_err() {
                self.conn = None;
            }
        }
    }

    /// Drains whatever bytes are available right now (the socket is
    /// non-blocking) into this link's frame buffer.
    fn read_into_buf(&mut self) {
        let Some((_, s)) = &mut self.conn else { return };
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => {
                    self.conn = None;
                    return;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.conn = None;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::MigrationPlan;
    use esds_datatypes::{KvOp, KvStore, KvValue};

    #[test]
    fn sharded_wire_roundtrip_and_spread() {
        let mut svc = ShardedWireService::launch(KvStore, 2, ShardedWireConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(c.submit(KvOp::put(format!("k{i}"), format!("{i}")), &[], false));
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack),
                "put k{i} timed out"
            );
        }
        for i in 0..10 {
            let get = c.submit(KvOp::get(format!("k{i}")), &[], false);
            assert_eq!(
                c.await_response(get, Duration::from_secs(10)),
                Some(KvValue::Value(Some(format!("{i}"))))
            );
        }
        // Both shards actually received traffic.
        let shards: BTreeSet<u32> = (0..10)
            .map(|i| table.shard_of_key(&format!("k{i}")))
            .collect();
        assert_eq!(shards.len(), 2);
        // A strict fence per shard: when it answers, everything before
        // it is stable at every replica of its shard, so the
        // convergence check below cannot race gossip.
        for shard in 0..2u32 {
            let key = (0..10)
                .map(|i| format!("k{i}"))
                .find(|k| table.shard_of_key(k) == shard)
                .expect("both shards have keys");
            let fence = c.submit(KvOp::get(key), &ids.clone(), true);
            assert!(
                c.await_response(fence, Duration::from_secs(30)).is_some(),
                "strict fence on shard {shard} did not stabilize"
            );
        }
        // Each shard's replicas converged among themselves.
        for (s, reps) in svc.shutdown().into_iter().enumerate() {
            let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
            assert!(
                states.windows(2).all(|w| w[0] == w[1]),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn cross_shard_prev_waits_over_the_wire() {
        let mut svc = ShardedWireService::launch(KvStore, 2, ShardedWireConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let wa = c.submit(KvOp::put(&ka, "1"), &[], false);
        // Submitting with a cross-shard prev blocks until wa is answered.
        let wb = c.submit(KvOp::put(&kb, "2"), &[wa], false);
        assert_eq!(c.value_of(wa), Some(&KvValue::Ack));
        assert_ne!(c.shard_of(wa), c.shard_of(wb));
        assert_eq!(
            c.await_response(wb, Duration::from_secs(10)),
            Some(KvValue::Ack)
        );
        svc.shutdown();
    }

    #[test]
    fn transitive_prev_through_foreign_hop_is_inherited() {
        // Chain A (shard s) ← B (foreign) ← C (shard s): C must carry
        // A's ordering into the shard even though its only direct prev
        // is foreign. Slow gossip keeps A from propagating on its own.
        let mut cfg = ShardedWireConfig::new(2);
        cfg.cluster.gossip_interval = Duration::from_secs(5);
        let mut svc = ShardedWireService::launch(KvStore, 2, cfg);
        let table = svc.table();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = c.submit(KvOp::put(&ka, "1"), &[], false);
        let b = c.submit(KvOp::put(&kb, "2"), &[a], false);
        let read = c.submit(KvOp::get(&ka), &[b], false);
        assert_eq!(c.shard_of(read), c.shard_of(a), "same key, same shard");
        assert_eq!(
            c.await_response(read, Duration::from_secs(10)),
            Some(KvValue::Value(Some("1".into())))
        );
        svc.shutdown();
    }

    #[test]
    fn stale_client_is_nakked_and_reroutes() {
        // The deployment runs at table v1 (a 2-shard table grown to 3);
        // the client's view is the v0 uniform 2-shard table. Every
        // submission under v0 is refused with a NAK carrying the v1
        // table; the client adopts it, re-routes, and the operation
        // lands on the correct shard — reads never route stale.
        let mut grown = RoutingTable::uniform(2);
        grown.apply(&MigrationPlan::add_shard(&grown));
        assert_eq!(grown.version(), 1);
        let mut svc = ShardedWireService::launch_with_table(
            KvStore,
            grown.clone(),
            ShardedWireConfig::new(2),
        );
        let stale = RoutingTable::uniform(2);
        let mut c = svc.client_with_table(stale.clone());
        assert_eq!(c.table_version(), 0);

        // A key the two tables route differently (one that moved to the
        // new shard).
        let key = (0..1000)
            .map(|i| format!("k{i}"))
            .find(|k| grown.shard_of_key(k) != stale.shard_of_key(k))
            .expect("some key moved");
        let put = c.submit(KvOp::put(&key, "fresh"), &[], false);
        assert_eq!(
            c.await_response(put, Duration::from_secs(10)),
            Some(KvValue::Ack)
        );
        // The NAK upgraded the client and relocated the operation.
        assert_eq!(c.table_version(), 1);
        assert_eq!(c.shard_of(put), Some(grown.shard_of_key(&key)));
        assert_eq!(c.routed_version(put), Some(1));

        // A fresh, current-table client reads the value from the right
        // shard — the stale client's write did not land on the old
        // owner. The reader relays through a *different* replica than
        // the writer, so a nonstrict read may race gossip; poll until
        // the eventually-consistent read converges (bounded).
        let mut reader = svc.client();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let get = reader.submit(KvOp::get(&key), &[], false);
            assert_eq!(reader.shard_of(get), Some(grown.shard_of_key(&key)));
            let v = reader.await_response(get, Duration::from_secs(10));
            if v == Some(KvValue::Value(Some("fresh".into()))) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "re-routed write never became visible on the new owner: {v:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        svc.shutdown();
    }

    #[test]
    fn duplicate_naks_do_not_double_apply_the_rerouted_op() {
        // Every frame is duplicated, so each stale-version request
        // provokes (at least) two NAKs for the same global operation.
        // The re-route must be idempotent: the first NAK relocates the
        // operation, stragglers merely re-send the *same* per-shard id.
        // Minting a fresh id per NAK would deposit twice — Bank is
        // non-idempotent, so the strict balance pins the exact amount.
        use esds_datatypes::{Bank, BankOp, BankValue};
        let mut grown = RoutingTable::uniform(2);
        grown.apply(&MigrationPlan::add_shard(&grown));
        let chaos = ChaosConfig::lossy(0.0, 77).with_duplication(1.0);
        let mut svc = ShardedWireService::launch_with_table(
            Bank,
            grown,
            ShardedWireConfig::new(2).with_chaos(chaos),
        );
        let mut c = svc.client_with_table(RoutingTable::uniform(2));
        let dep = c.submit(BankOp::Deposit(10), &[], false);
        assert_eq!(
            c.await_response(dep, Duration::from_secs(10)),
            Some(BankValue::Ack)
        );
        assert_eq!(c.table_version(), 1, "NAK adopted");
        let bal = c.submit(BankOp::Balance, &[dep], true);
        assert_eq!(
            c.await_response(bal, Duration::from_secs(30)),
            Some(BankValue::Balance(10)),
            "a duplicated NAK re-minted the deposit"
        );
        let stats = svc.chaos_stats();
        assert!(stats.duplicated > 0, "duplication must actually happen");
        svc.shutdown();
    }

    /// Finds `per_shard` keys owned by every shard of `table`, drawing
    /// from a deterministic key stream.
    fn keys_covering(table: &RoutingTable, per_shard: usize) -> Vec<String> {
        let mut by_shard: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for i in 0..10_000 {
            let k = format!("k{i}");
            let owner = table.shard_of_key(&k);
            let bucket = by_shard.entry(owner).or_default();
            if bucket.len() < per_shard {
                bucket.push(k);
            }
            if by_shard.len() == table.n_shards() as usize
                && by_shard.values().all(|b| b.len() == per_shard)
            {
                break;
            }
        }
        assert_eq!(by_shard.len(), table.n_shards() as usize, "coverage");
        by_shard.into_values().flatten().collect()
    }

    #[test]
    fn whole_object_keys_gathers_union_across_shards() {
        // The PR's headline bug, on the wire: Keys is a whole-object
        // query, so on a 2-shard deployment it must return *both*
        // shards' key sets — not the home shard's slice. With every put
        // in `prev`, each per-shard sub-operation is ordered after that
        // shard's puts, so even the eventual-mode gather is exact.
        let mut svc = ShardedWireService::launch(KvStore, 2, ShardedWireConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let keys = keys_covering(&table, 3);
        let mut puts = Vec::new();
        for k in &keys {
            puts.push(c.submit(KvOp::put(k, "v"), &[], false));
        }
        for id in &puts {
            assert!(c.await_response(*id, Duration::from_secs(10)).is_some());
        }
        let q = c.submit(KvOp::Keys, &puts, false);
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(
            c.await_response(q, Duration::from_secs(10)),
            Some(KvValue::Keys(expect)),
            "gathered Keys must union every shard's slice"
        );
        assert_eq!(c.shard_of(q), None, "a gather lives on every shard");
        let (subs, frontier) = c.gather_detail(q).expect("gather bookkeeping");
        assert_eq!(subs.len(), 2, "one sub-operation per involved shard");
        assert!(frontier.is_empty(), "eventual gathers take no barrier");
        // A gathered query works as a `prev`: the dependent get anchors
        // on the gather's sub-operation on its own shard.
        let dep = c.submit(KvOp::get(&keys[0]), &[q], false);
        assert_eq!(
            c.await_response(dep, Duration::from_secs(10)),
            Some(KvValue::Value(Some("v".into())))
        );
        svc.shutdown();
    }

    #[test]
    fn barrier_strict_keys_is_exact_on_four_shards() {
        // Acceptance: on a live 4-shard TCP deployment, a barrier-strict
        // Keys with *no* prev returns exactly the union a 1-shard
        // deployment would — everything this client has been answered
        // for is covered by each relay's frontier snapshot — and the
        // recorded (frontier, sub) pairs satisfy the spec-level barrier
        // predicate against each shard's stable watermark.
        use esds_spec::{check_barrier_cut, ShardBarrier};
        let mut svc = ShardedWireService::launch(KvStore, 4, ShardedWireConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let keys = keys_covering(&table, 3);
        let mut puts = Vec::new();
        for k in &keys {
            puts.push(c.submit(KvOp::put(k, "v"), &[], false));
        }
        for id in &puts {
            assert!(c.await_response(*id, Duration::from_secs(10)).is_some());
        }
        let q = c.submit(KvOp::Keys, &[], true);
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(
            c.await_response(q, Duration::from_secs(30)),
            Some(KvValue::Keys(expect)),
            "barrier-strict Keys must equal the 1-shard union"
        );
        let (subs, frontier) = c.gather_detail(q).expect("gather bookkeeping");
        assert_eq!(subs.len(), 4);
        assert_eq!(frontier.len(), 4, "strict gathers barrier every shard");
        for (shard, sub) in &subs {
            let b = ShardBarrier {
                shard: *shard,
                frontier: frontier[shard].clone(),
                sub: *sub,
            };
            // The watermark grows to include the strict sub-operation
            // (it was answered, hence stable); then the barrier cut must
            // hold in the shard's final order prefix.
            let deadline = Instant::now() + Duration::from_secs(30);
            let order = loop {
                let w = svc
                    .stable_watermark(*shard, Duration::from_secs(5))
                    .expect("node answers stability probes");
                if w.contains(sub) {
                    break w;
                }
                assert!(
                    Instant::now() < deadline,
                    "sub-operation never entered shard {shard}'s watermark"
                );
                std::thread::sleep(Duration::from_millis(10));
            };
            assert_eq!(
                check_barrier_cut(&b, &order),
                Vec::new(),
                "barrier violated on shard {shard}"
            );
        }
        svc.shutdown();
    }

    #[test]
    fn ungatherable_whole_object_is_refused_on_multishard_tables() {
        // A keyless operator without a merge cannot be answered from one
        // shard's slice: `try_submit` refuses it with the typed error on
        // a multi-shard table, and `submit` would panic. On a 1-shard
        // table the home slot's owner holds the whole object, so legacy
        // routing stays exact and allowed.
        #[derive(Clone)]
        struct NoGatherKv;
        impl esds_core::SerialDataType for NoGatherKv {
            type State = <KvStore as esds_core::SerialDataType>::State;
            type Operator = KvOp;
            type Value = KvValue;
            fn initial_state(&self) -> Self::State {
                KvStore.initial_state()
            }
            fn apply(&self, s: &Self::State, op: &Self::Operator) -> (Self::State, Self::Value) {
                KvStore.apply(s, op)
            }
        }
        impl KeyedDataType for NoGatherKv {
            fn shard_key<'a>(&self, op: &'a KvOp) -> Option<&'a str> {
                KvStore.shard_key(op)
            }
            // merge_gathered: default None — Keys becomes un-gatherable.
        }

        let mut svc = ShardedWireService::launch(NoGatherKv, 2, ShardedWireConfig::new(1));
        let mut c = svc.client();
        assert_eq!(
            c.try_submit(KvOp::Keys, &[], false),
            Err(WholeObjectUnsupported)
        );
        assert_eq!(
            c.try_submit(KvOp::Keys, &[], true),
            Err(WholeObjectUnsupported),
            "strictness does not make a partial answer true"
        );
        // Keyed operators are unaffected.
        let put = c.submit(KvOp::put("a", "1"), &[], false);
        assert!(c.await_response(put, Duration::from_secs(10)).is_some());
        svc.shutdown();

        let mut single = ShardedWireService::launch(NoGatherKv, 1, ShardedWireConfig::new(1));
        let mut c1 = single.client();
        let w = c1.submit(KvOp::put("a", "1"), &[], false);
        let q = c1
            .try_submit(KvOp::Keys, &[w], false)
            .expect("one shard holds the whole object");
        assert_eq!(
            c1.await_response(q, Duration::from_secs(10)),
            Some(KvValue::Keys(vec!["a".into()]))
        );
        single.shutdown();
    }

    #[test]
    fn nakked_gather_rescatters_under_adopted_table() {
        // Satellite: a gather scattered under a stale table is NAKed per
        // sub-operation; the client must adopt the newer table and
        // re-scatter the *whole* query across the new involved shard
        // set — the fix for keyless routing racing a table flip.
        let mut grown = RoutingTable::uniform(2);
        grown.apply(&MigrationPlan::add_shard(&grown));
        let mut svc = ShardedWireService::launch_with_table(
            KvStore,
            grown.clone(),
            ShardedWireConfig::new(2),
        );
        // Seed all three shards through a current-table client.
        let keys = keys_covering(&grown, 2);
        let mut seeder = svc.client();
        let mut puts = Vec::new();
        for k in &keys {
            puts.push(seeder.submit(KvOp::put(k, "v"), &[], false));
        }
        for id in &puts {
            assert!(seeder
                .await_response(*id, Duration::from_secs(10))
                .is_some());
        }
        // The stale client's *first* submission is the gather: both v0
        // sub-operations are refused, the v1 table is adopted, and the
        // repair re-scatters across all three shards.
        let mut c = svc.client_with_table(RoutingTable::uniform(2));
        assert_eq!(c.table_version(), 0);
        let q = c.submit(KvOp::Keys, &[], false);
        assert!(
            c.await_response(q, Duration::from_secs(30)).is_some(),
            "re-scattered gather never answered"
        );
        assert_eq!(c.table_version(), 1, "NAK adopted");
        assert_eq!(c.routed_version(q), Some(1), "gather re-scattered");
        let (subs, _) = c.gather_detail(q).expect("gather bookkeeping");
        assert_eq!(subs.len(), 3, "new shard set includes the added shard");
        // An eventual read may predate gossip of the seeder's puts;
        // poll until the union converges to the full key set (bounded).
        let mut expect = keys.clone();
        expect.sort();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let q = c.submit(KvOp::Keys, &[], false);
            let v = c.await_response(q, Duration::from_secs(10));
            if v == Some(KvValue::Keys(expect.clone())) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "gathered union never converged: {v:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        svc.shutdown();
    }

    #[test]
    fn chaos_fronts_every_listener_and_work_completes() {
        // 10% loss plus duplication on every frame of every shard's
        // traffic (requests, responses, gossip): retries and gossip
        // re-shipping must still drive a cross-shard chain to completion.
        let chaos = ChaosConfig::lossy(0.10, 1234).with_duplication(0.10);
        let mut svc =
            ShardedWireService::launch(KvStore, 2, ShardedWireConfig::new(2).with_chaos(chaos));
        let table = svc.table();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let wa = c.submit(KvOp::put(&ka, "1"), &[], false);
        let wb = c.submit(KvOp::put(&kb, "2"), &[wa], false);
        let ra = c.submit(KvOp::get(&ka), &[wb], false);
        assert_eq!(
            c.await_response(ra, Duration::from_secs(30)),
            Some(KvValue::Value(Some("1".into())))
        );
        let stats = svc.chaos_stats();
        assert!(stats.forwarded > 0, "proxies must carry the traffic");
        svc.shutdown();
    }
}

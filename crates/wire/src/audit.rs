//! Streaming audit of a **sharded wire deployment**: one
//! [`StreamingChecker`] per shard, composed over `ShardedOpId` streams
//! exactly the way the per-shard batch conformance tests compose — each
//! shard's externally-visible trace (shard-local descriptors, values,
//! witnesses) is explainable by its own ESDS instance, incrementally
//! and with bounded memory.
//!
//! The `Stabilize` feed comes from
//! [`ShardedWireService::stable_watermark`]: the shard's label order
//! truncated just past the last operation known stable everywhere.
//! That prefix is final and gap-free, so polling it late only delays
//! retirement — it never unsounds the audit.

use std::time::Duration;

use esds_core::{KeyedDataType, OpDescriptor, OpId, SerialDataType};
use esds_spec::{
    fold_digest, AuditCertificate, AuditConfig, AuditResult, AuditStatus, StreamingChecker,
};

use crate::codec::Wire;
use crate::sharded::ShardedWireService;

/// Per-shard streaming checkers for a sharded wire deployment.
///
/// Feed it from the client side ([`observe_request`] at submit,
/// [`observe_response`] when a value arrives — both in shard-local
/// ids, as [`ShardedWireClient::local_descriptor`] and
/// [`ShardedWireClient::witness_of`] report them) and poll
/// [`sync_watermarks`] to retire verified operations.
///
/// [`observe_request`]: ShardedWireAuditor::observe_request
/// [`observe_response`]: ShardedWireAuditor::observe_response
/// [`sync_watermarks`]: ShardedWireAuditor::sync_watermarks
/// [`ShardedWireClient::local_descriptor`]: crate::ShardedWireClient::local_descriptor
/// [`ShardedWireClient::witness_of`]: crate::ShardedWireClient::witness_of
#[derive(Clone, Debug)]
pub struct ShardedWireAuditor<T: SerialDataType> {
    checkers: Vec<StreamingChecker<T>>,
    fed: Vec<usize>,
    /// Per-shard chain digest of the fed watermark, guarding against
    /// transiently re-ordered estimates while a node recovers.
    fed_digest: Vec<u64>,
}

/// A violation tagged with the shard whose audit found it.
pub type ShardViolation = (u32, esds_spec::AuditViolation);

impl<T: SerialDataType + Clone> ShardedWireAuditor<T> {
    /// One default-configured checker per shard.
    pub fn new(dt: T, n_shards: u32) -> Self {
        Self::with_config(dt, n_shards, AuditConfig::default())
    }

    /// One checker per shard with an explicit configuration.
    pub fn with_config(dt: T, n_shards: u32, cfg: AuditConfig) -> Self {
        ShardedWireAuditor {
            checkers: (0..n_shards)
                .map(|_| StreamingChecker::with_config(dt.clone(), cfg))
                .collect(),
            fed: vec![0; n_shards as usize],
            fed_digest: vec![0; n_shards as usize],
        }
    }

    /// Folds a request (shard-local descriptor) into its shard's audit.
    ///
    /// # Errors
    ///
    /// The first violation, latched in that shard's checker.
    pub fn observe_request(&mut self, shard: u32, desc: OpDescriptor<T::Operator>) -> AuditResult {
        self.checkers[shard as usize].on_request(desc)
    }

    /// Folds a response (shard-local id and witness) into its shard's
    /// audit.
    ///
    /// # Errors
    ///
    /// The first violation, latched in that shard's checker.
    pub fn observe_response(
        &mut self,
        shard: u32,
        id: OpId,
        value: T::Value,
        witness: Option<Vec<OpId>>,
    ) -> AuditResult {
        self.checkers[shard as usize].on_response(id, value, witness)
    }

    /// Feeds a shard's eventual order directly (trace replay drivers;
    /// live deployments use [`ShardedWireAuditor::sync_watermarks`]).
    ///
    /// # Errors
    ///
    /// The first violation, latched in that shard's checker.
    pub fn observe_stabilize(&mut self, shard: u32, id: OpId) -> AuditResult {
        self.checkers[shard as usize].on_stabilize(id)
    }

    /// The per-shard audit statuses.
    pub fn statuses(&self) -> Vec<AuditStatus> {
        self.checkers.iter().map(|c| c.status()).collect()
    }

    /// One shard's checker (status, violation, certificate).
    pub fn checker(&self, shard: u32) -> &StreamingChecker<T> {
        &self.checkers[shard as usize]
    }

    /// Ends every shard's stream: each must have full eventual-order
    /// coverage. Returns one certificate per shard.
    ///
    /// # Errors
    ///
    /// The first failing shard's violation, tagged with its shard.
    pub fn finish(&self) -> Result<Vec<AuditCertificate>, ShardViolation> {
        self.checkers
            .iter()
            .enumerate()
            .map(|(s, c)| c.finish().map_err(|v| (s as u32, v)))
            .collect()
    }
}

impl<T> ShardedWireAuditor<T>
where
    T: KeyedDataType + Clone + Send + 'static,
    T::Operator: Wire + Send + Clone,
    T::Value: Wire + Send + Clone,
    T::State: Send,
{
    /// Polls every shard's stable watermark off the live deployment and
    /// feeds the newly-final suffix to that shard's checker. Shards
    /// that cannot answer within `timeout` are skipped this round (the
    /// watermark is final; the next poll feeds the missed suffix).
    ///
    /// # Errors
    ///
    /// The first violation, tagged with its shard.
    pub fn sync_watermarks(
        &mut self,
        svc: &ShardedWireService<T>,
        timeout: Duration,
    ) -> Result<(), ShardViolation> {
        for shard in 0..self.checkers.len() {
            let Some(watermark) = svc.stable_watermark(shard as u32, timeout) else {
                continue;
            };
            // A node mid-recovery can transiently report an estimate
            // shorter than, or ordered differently from, what was fed:
            // skip such polls (digest guard); a later poll catches up.
            if watermark.len() < self.fed[shard] {
                continue;
            }
            let fed = watermark[..self.fed[shard]]
                .iter()
                .fold(0, |d, &id| fold_digest(d, id));
            if fed != self.fed_digest[shard] {
                continue;
            }
            for &id in &watermark[self.fed[shard]..] {
                self.checkers[shard]
                    .on_stabilize(id)
                    .map_err(|v| (shard as u32, v))?;
                self.fed[shard] += 1;
                self.fed_digest[shard] = fold_digest(self.fed_digest[shard], id);
            }
        }
        Ok(())
    }
}

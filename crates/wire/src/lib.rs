//! # esds-wire
//!
//! Binary wire protocol and TCP deployment for the eventually-serializable
//! data service. Cheiner's implementation (paper §11.1) ran the algorithm
//! over MPI on a network of Unix workstations; this crate is the analogous
//! transport layer for this reproduction: the *same* [`esds_alg::Replica`]
//! and [`esds_alg::FrontEnd`] state machines exercised by the simulator
//! and the threaded runtime, carried over real sockets.
//!
//! * [`codec`] — checked little-endian/varint primitives over [`bytes`]
//!   buffers and the [`Wire`] trait, with implementations for all core
//!   vocabulary (ids, labels, descriptors, summaries) and for every
//!   operator/value type in `esds-datatypes`;
//! * [`frame`] — length-prefixed frames with magic, version, kind and an
//!   FNV-1a checksum, plus blocking reader/writer adapters;
//! * [`message`] — the request/response/gossip message set as framed
//!   payloads, including the §10.2 *summarized* gossip encoding that
//!   carries `D` and `S` as [`esds_core::IdSummary`] watermark vectors;
//! * [`tcp`] — a socket deployment: [`tcp::TcpReplicaNode`] replica
//!   servers gossiping over TCP, [`tcp::TcpClient`] front ends, and
//!   [`tcp::TcpCluster`] for launching a localhost cluster (with
//!   crash/restart, §9.3);
//! * [`chaos`] — a frame-aware fault-injecting proxy ([`ChaosProxy`]) for
//!   exercising the §9.3 loss/duplication/delay/reordering tolerance on
//!   real sockets;
//! * [`sharded`] — the sharded TCP deployment: one cluster per shard
//!   behind [`sharded::ShardedWireClient`]s that route `key → slot →
//!   shard` through the shared [`esds_core::RoutingTable`], speak
//!   `ShardedOpId`-carrying frames with a routing-table-version
//!   handshake, and resolve cross-shard `prev` constraints by awaiting
//!   the foreign shard's response over the wire;
//! * [`audit`] — an online streaming audit of a live sharded deployment:
//!   one bounded-memory [`esds_spec::StreamingChecker`] per shard, fed
//!   the externally visible trace plus each shard's *final* stable
//!   watermark (the label order truncated just past the last operation
//!   known stable everywhere), certifying Theorems 5.7/5.8 as the
//!   system runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod chaos;
pub mod codec;
pub mod frame;
pub mod message;
pub mod sharded;
pub mod tcp;

mod error;

pub use audit::{ShardViolation, ShardedWireAuditor};
pub use chaos::{ChaosConfig, ChaosProxy};
pub use codec::Wire;
pub use error::WireError;
pub use frame::{read_frame, write_frame, Frame, FrameKind, MAX_FRAME_LEN};
pub use message::{
    decode_message, encode_message, ShardedRequestMsg, ShardedResponseMsg, StabilityInfoMsg,
    SummarizedGossip, WireMessage,
};
pub use sharded::{
    ChaosStats, ShardedWireClient, ShardedWireConfig, ShardedWireService, WholeObjectUnsupported,
};
pub use tcp::{
    AddrTable, NodeObs, StabilitySnapshot, TcpClient, TcpCluster, TcpClusterConfig, TcpReplicaNode,
};

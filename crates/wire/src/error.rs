//! Errors of the wire protocol.

use std::error::Error;
use std::fmt;

/// An error decoding wire-format data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A varint ran longer than its maximum width.
    VarintOverflow,
    /// A length prefix exceeded the decoder's limit.
    TooLarge {
        /// What was being decoded.
        context: &'static str,
        /// The claimed length.
        len: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// A byte string was not valid UTF-8.
    InvalidUtf8,
    /// A frame had the wrong magic bytes.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// A frame declared an unsupported protocol version.
    BadVersion {
        /// The version found.
        found: u8,
    },
    /// A frame's checksum did not match its payload.
    BadChecksum {
        /// Checksum declared in the frame.
        declared: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            WireError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::TooLarge { context, len, max } => {
                write!(f, "declared length {len} for {context} exceeds limit {max}")
            }
            WireError::InvalidUtf8 => write!(f, "byte string is not valid utf-8"),
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected \"ES\")")
            }
            WireError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            WireError::BadChecksum { declared, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: declared {declared:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_context() {
        let e = WireError::UnexpectedEof { context: "OpId" };
        assert!(e.to_string().contains("OpId"));
        let e = WireError::InvalidTag {
            context: "LabelSlot",
            tag: 9,
        };
        assert!(e.to_string().contains("tag 9"));
        let e = WireError::BadChecksum {
            declared: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<WireError>();
    }
}

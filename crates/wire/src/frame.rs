//! Length-prefixed frames.
//!
//! Layout (all integers little-endian, fixed width — framing must be
//! parseable before any varint state exists):
//!
//! ```text
//! +----+----+---------+------+-------------+----------+-------------+
//! | 'E'| 'S'| version | kind | len: u32 LE | payload… | fnv1a: u32  |
//! +----+----+---------+------+-------------+----------+-------------+
//! ```
//!
//! The checksum covers the payload only; header corruption is caught by
//! the magic/version/kind checks and the length bound. Checksums matter
//! here: the algorithm tolerates *lost* and *duplicated* messages (paper
//! §9.3) but not *corrupted* ones — a flipped bit in a label would
//! silently violate the label-uniqueness assumption, so corrupt frames
//! are surfaced as [`WireError::BadChecksum`] and dropped by transports.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::WireError;

/// Frame magic: `b"ES"`.
pub const MAGIC: [u8; 2] = *b"ES";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Maximum payload length accepted (16 MiB).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// What a frame carries; the tag byte after the version.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FrameKind {
    /// A `⟨"request", x⟩` message (front end → replica).
    Request = 1,
    /// A `⟨"response", x, v⟩` message (replica → front end).
    Response = 2,
    /// A `⟨"gossip", R, D, L, S⟩` message (replica → replica).
    Gossip = 3,
    /// A §10.2 summarized gossip message.
    GossipSummary = 4,
    /// Connection preamble naming the sender (client or replica).
    Hello = 5,
    /// A §10.4 batched gossip exchange (deltas + summary watermarks).
    GossipBatched = 6,
    /// A sharded-deployment request: a `ShardedOpId`-tagged descriptor
    /// plus the routing-table version the client routed under.
    ShardedRequest = 7,
    /// A sharded-deployment response: the answered global operation, or a
    /// version-mismatch NAK carrying the authoritative routing table.
    ShardedResponse = 8,
    /// A client's probe of a replica's stability knowledge (no payload) —
    /// the wire half of the barrier-strict gather snapshot.
    StabilityQuery = 9,
    /// The probed replica's answer: its local label order and the set it
    /// knows stable at every replica.
    StabilityInfo = 10,
    /// A client's request for the node's metrics snapshot (no payload).
    MetricsQuery = 11,
    /// The node's answer: a rendered metrics snapshot (counters,
    /// gauges, histogram summaries) of its process-wide registry.
    MetricsInfo = 12,
}

impl FrameKind {
    /// Every frame kind the protocol defines, in tag order. Exhaustive by
    /// construction — the round-trip tests iterate this so a new variant
    /// cannot be added without entering the coverage.
    pub const ALL: [FrameKind; 12] = [
        FrameKind::Request,
        FrameKind::Response,
        FrameKind::Gossip,
        FrameKind::GossipSummary,
        FrameKind::Hello,
        FrameKind::GossipBatched,
        FrameKind::ShardedRequest,
        FrameKind::ShardedResponse,
        FrameKind::StabilityQuery,
        FrameKind::StabilityInfo,
        FrameKind::MetricsQuery,
        FrameKind::MetricsInfo,
    ];

    /// Decodes a tag byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidTag`] for a byte naming no variant.
    pub fn from_u8(tag: u8) -> Result<Self, WireError> {
        match tag {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Gossip),
            4 => Ok(FrameKind::GossipSummary),
            5 => Ok(FrameKind::Hello),
            6 => Ok(FrameKind::GossipBatched),
            7 => Ok(FrameKind::ShardedRequest),
            8 => Ok(FrameKind::ShardedResponse),
            9 => Ok(FrameKind::StabilityQuery),
            10 => Ok(FrameKind::StabilityInfo),
            11 => Ok(FrameKind::MetricsQuery),
            12 => Ok(FrameKind::MetricsInfo),
            tag => Err(WireError::InvalidTag {
                context: "FrameKind",
                tag,
            }),
        }
    }
}

/// A decoded frame: its kind and payload bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// What the payload contains.
    pub kind: FrameKind,
    /// The payload (already checksum-verified on decode).
    pub payload: Bytes,
}

/// FNV-1a over a byte slice (32-bit).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes a frame into a buffer.
pub fn encode_frame(kind: FrameKind, payload: &[u8], out: &mut BytesMut) {
    out.put_slice(&MAGIC);
    out.put_u8(VERSION);
    out.put_u8(kind as u8);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    out.put_u32_le(fnv1a(payload));
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds an incomplete frame (read more
/// bytes and retry); consumes the frame's bytes exactly when it returns
/// `Ok(Some(_))`.
///
/// # Errors
///
/// Returns [`WireError`] for bad magic/version/kind, oversized payloads,
/// or checksum mismatches. The buffer position is unspecified after an
/// error; transports should drop the connection.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Frame>, WireError> {
    const HEADER: usize = 2 + 1 + 1 + 4;
    if buf.len() < HEADER {
        return Ok(None);
    }
    let magic = [buf[0], buf[1]];
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion { found: buf[2] });
    }
    let kind = FrameKind::from_u8(buf[3])?;
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge {
            context: "frame payload",
            len: u64::from(len),
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    let total = HEADER + len as usize + 4;
    if buf.len() < total {
        return Ok(None);
    }
    buf.advance(HEADER);
    let payload = buf.split_to(len as usize).freeze();
    let declared = buf.get_u32_le();
    let computed = fnv1a(&payload);
    if declared != computed {
        return Err(WireError::BadChecksum { declared, computed });
    }
    Ok(Some(Frame { kind, payload }))
}

/// Writes one frame to a blocking writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = BytesMut::with_capacity(payload.len() + 12);
    encode_frame(kind, payload, &mut buf);
    w.write_all(&buf)
}

/// Reads one frame from a blocking reader (e.g. a `TcpStream`).
///
/// # Errors
///
/// Returns `Ok(None)` on clean EOF at a frame boundary; wire errors are
/// converted to `io::ErrorKind::InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; 8];
    // Clean EOF only if the very first byte is missing.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    r.read_exact(&mut header[1..])?;
    let mut buf = BytesMut::from(&header[..]);
    let magic = [buf[0], buf[1]];
    if magic != MAGIC {
        return Err(invalid(WireError::BadMagic { found: magic }));
    }
    if buf[2] != VERSION {
        return Err(invalid(WireError::BadVersion { found: buf[2] }));
    }
    let kind = FrameKind::from_u8(buf[3]).map_err(invalid)?;
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_LEN {
        return Err(invalid(WireError::TooLarge {
            context: "frame payload",
            len: u64::from(len),
            max: u64::from(MAX_FRAME_LEN),
        }));
    }
    buf.clear();
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut check = [0u8; 4];
    r.read_exact(&mut check)?;
    let declared = u32::from_le_bytes(check);
    let computed = fnv1a(&payload);
    if declared != computed {
        return Err(invalid(WireError::BadChecksum { declared, computed }));
    }
    Ok(Some(Frame {
        kind,
        payload: Bytes::from(payload),
    }))
}

fn invalid(e: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_buffer() {
        let mut buf = BytesMut::new();
        encode_frame(FrameKind::Gossip, b"hello", &mut buf);
        encode_frame(FrameKind::Request, b"", &mut buf);
        let f1 = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(f1.kind, FrameKind::Gossip);
        assert_eq!(&f1.payload[..], b"hello");
        let f2 = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(f2.kind, FrameKind::Request);
        assert!(f2.payload.is_empty());
        assert!(decode_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(FrameKind::Response, b"abc", &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(decode_frame(&mut partial).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = BytesMut::new();
        encode_frame(FrameKind::Gossip, b"payload", &mut buf);
        let idx = 8 + 3; // inside the payload
        buf[idx] ^= 0x40;
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = BytesMut::new();
        encode_frame(FrameKind::Gossip, b"x", &mut buf);
        buf[0] = b'X';
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = BytesMut::new();
        encode_frame(FrameKind::Gossip, b"x", &mut buf);
        buf[2] = 99;
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(FrameKind::Gossip as u8);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn io_reader_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Hello, b"r0").unwrap();
        write_frame(&mut wire, FrameKind::Gossip, b"g").unwrap();
        let mut r = &wire[..];
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((f1.kind, &f1.payload[..]), (FrameKind::Hello, &b"r0"[..]));
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f2.kind, FrameKind::Gossip);
        // Clean EOF at the boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn io_reader_rejects_corruption() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Gossip, b"payload").unwrap();
        wire[10] ^= 1;
        let mut r = &wire[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_kind_all_is_exhaustive() {
        // Every listed kind round-trips through its tag…
        for k in FrameKind::ALL {
            assert_eq!(FrameKind::from_u8(k as u8).unwrap(), k);
        }
        // …and no tag outside the list decodes, so ALL really is the
        // whole protocol.
        let tags: std::collections::BTreeSet<u8> =
            FrameKind::ALL.iter().map(|k| *k as u8).collect();
        for t in 0..=255u8 {
            assert_eq!(FrameKind::from_u8(t).is_ok(), tags.contains(&t), "tag {t}");
        }
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a 32-bit test vectors.
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a(b"foobar"), 0xbf9c_f968);
    }
}

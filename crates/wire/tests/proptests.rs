//! Property and exhaustiveness tests for the wire protocol: every
//! [`FrameKind`] round-trips through a full encode→decode cycle
//! (including the sharded frames), and the `ShardedOpId`-carrying
//! framing survives arbitrary identifiers, descriptors, and tables.
//!
//! This suite runs in the release-mode `proptests` CI job at a high case
//! count; the exhaustive frame test is deterministic but lives here so
//! protocol changes get the same release-mode treatment.

use bytes::BytesMut;
use esds_core::{
    ClientId, IdSummary, Label, MigrationPlan, OpDescriptor, OpId, ReplicaId, RoutingTable,
    ShardedOpId,
};
use esds_datatypes::{KvOp, KvValue};
use esds_wire::message::{HelloId, ShardedRequestMsg, ShardedResponseMsg};
use esds_wire::{decode_message, encode_message, Frame, FrameKind, Wire, WireMessage};
use proptest::prelude::*;

type Msg = WireMessage<KvOp, KvValue>;

fn id(c: u32, s: u64) -> OpId {
    OpId::new(ClientId(c), s)
}

fn roundtrip(msg: Msg) {
    let mut buf = BytesMut::new();
    encode_message(&msg, &mut buf);
    let frame = esds_wire::frame::decode_frame(&mut buf).unwrap().unwrap();
    let back: Msg = decode_message(&frame).unwrap();
    assert_eq!(back, msg);
    assert!(buf.is_empty(), "frame must consume exactly its bytes");
}

/// One representative message per frame kind.
fn message_of(kind: FrameKind) -> Msg {
    let desc = OpDescriptor::new(id(1, 2), KvOp::put("k", "v"))
        .with_prev([id(1, 0), id(2, 9)])
        .with_strict(true);
    match kind {
        FrameKind::Request => Msg::Request(esds_alg::RequestMsg { desc }),
        FrameKind::Response => Msg::Response(esds_alg::ResponseMsg {
            id: id(1, 2),
            value: KvValue::Value(Some("v".into())),
            witness: Some(vec![id(1, 0), id(1, 2)]),
        }),
        FrameKind::Gossip => Msg::Gossip(esds_alg::GossipMsg {
            from: ReplicaId(1),
            rcvd: vec![desc],
            done: vec![id(1, 0)],
            labels: vec![(id(1, 0), Label::new(4, ReplicaId(1)))],
            stable: vec![id(1, 0)],
        }),
        FrameKind::GossipSummary => Msg::GossipSummary(esds_wire::SummarizedGossip::from_gossip(
            &esds_alg::GossipMsg {
                from: ReplicaId(0),
                rcvd: vec![desc],
                done: (0..20).map(|s| id(0, s)).collect(),
                labels: vec![],
                stable: (0..19).map(|s| id(0, s)).collect(),
            },
        )),
        FrameKind::Hello => Msg::Hello(HelloId::Client(ClientId(7))),
        FrameKind::GossipBatched => Msg::GossipBatched(esds_alg::BatchedGossipMsg {
            from: ReplicaId(2),
            rcvd: vec![desc],
            done: IdSummary::from_ids((0..10).map(|s| id(0, s))),
            labels: vec![(id(0, 3), Label::new(9, ReplicaId(2)))],
            stable: IdSummary::from_ids((0..9).map(|s| id(0, s))),
            known: IdSummary::from_ids([id(0, 0), id(1, 5)]),
        }),
        FrameKind::ShardedRequest => Msg::ShardedRequest(ShardedRequestMsg {
            version: 3,
            global: ShardedOpId::new(ClientId(1), 40),
            desc,
        }),
        FrameKind::ShardedResponse => {
            let mut table = RoutingTable::uniform(2);
            table.apply(&MigrationPlan::add_shard(&table));
            Msg::ShardedResponse(ShardedResponseMsg::Nak {
                global: ShardedOpId::new(ClientId(1), 40),
                table,
            })
        }
        FrameKind::StabilityQuery => Msg::StabilityQuery,
        FrameKind::StabilityInfo => Msg::StabilityInfo(esds_wire::StabilityInfoMsg {
            order: vec![id(0, 0), id(1, 3), id(0, 1)],
            stable_everywhere: vec![id(0, 0), id(1, 3)],
        }),
        FrameKind::MetricsQuery => Msg::MetricsQuery,
        FrameKind::MetricsInfo => {
            let reg = esds_obs::MetricsRegistry::new();
            reg.counter("replica0/requests").add(17);
            reg.gauge("replica0/unstable_window").set(3);
            reg.histogram("replica0/sync_us").record(250);
            Msg::MetricsInfo(reg.snapshot())
        }
    }
}

#[test]
fn every_frame_kind_round_trips() {
    // FrameKind::ALL is pinned exhaustive by the frame module's unit
    // tests; here every kind goes through the full message → frame →
    // bytes → frame → message cycle. Adding a FrameKind variant without
    // extending `message_of` fails to compile (the match is exhaustive),
    // so the coverage cannot silently rot.
    for kind in FrameKind::ALL {
        let msg = message_of(kind);
        let mut buf = BytesMut::new();
        encode_message(&msg, &mut buf);
        assert_eq!(buf[3], kind as u8, "frame tagged with its kind");
        roundtrip(message_of(kind));
    }
}

#[test]
fn sharded_ok_response_round_trips() {
    roundtrip(Msg::ShardedResponse(ShardedResponseMsg::Ok {
        global: ShardedOpId::new(ClientId(0), 0),
        resp: esds_alg::ResponseMsg {
            id: id(0, 0),
            value: KvValue::Ack,
            witness: None,
        },
    }));
}

fn arb_sharded_id() -> impl Strategy<Value = ShardedOpId> {
    (any::<u32>(), any::<u64>()).prop_map(|(c, s)| ShardedOpId::new(ClientId(c), s))
}

fn arb_table() -> impl Strategy<Value = RoutingTable> {
    // A uniform table advanced by 0–3 add-shard migrations: every table
    // a real deployment can publish in a NAK.
    (1u32..6, 0usize..4).prop_map(|(n, grows)| {
        let mut t = RoutingTable::uniform(n);
        for _ in 0..grows {
            t.apply(&MigrationPlan::add_shard(&t));
        }
        t
    })
}

proptest! {
    /// `ShardedOpId` framing is lossless for arbitrary identifiers.
    #[test]
    fn sharded_id_roundtrip(g in arb_sharded_id()) {
        let bytes = g.to_wire_bytes();
        prop_assert_eq!(ShardedOpId::from_wire_bytes(&bytes).unwrap(), g);
    }

    /// Whole `ShardedRequest` frames survive arbitrary ids, versions,
    /// prev sets, and strictness.
    #[test]
    fn sharded_request_framing_roundtrip(
        g in arb_sharded_id(),
        version in any::<u64>(),
        local in (0u32..8, 0u64..1000),
        prevs in proptest::collection::btree_set((0u32..8, 0u64..1000), 0..6),
        strict in any::<bool>(),
        key in "[a-z]{1,8}",
        value in "[a-z]{0,8}",
    ) {
        let desc = OpDescriptor::new(id(local.0, local.1), KvOp::put(&key, &value))
            .with_prev(prevs.into_iter().map(|(c, s)| id(c, s)))
            .with_strict(strict);
        roundtrip(Msg::ShardedRequest(ShardedRequestMsg { version, global: g, desc }));
    }

    /// NAK frames carry any publishable routing table losslessly.
    #[test]
    fn nak_table_roundtrip(g in arb_sharded_id(), table in arb_table()) {
        roundtrip(Msg::ShardedResponse(ShardedResponseMsg::Nak { global: g, table }));
    }

    /// Random byte soup never panics the sharded-message decoders.
    #[test]
    fn sharded_decoders_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = ShardedRequestMsg::<KvOp>::from_wire_bytes(&bytes);
        let _ = ShardedResponseMsg::<KvValue>::from_wire_bytes(&bytes);
        let _ = RoutingTable::from_wire_bytes(&bytes);
        // And via the frame path, for each sharded kind.
        for kind in [FrameKind::ShardedRequest, FrameKind::ShardedResponse] {
            let frame = Frame { kind, payload: bytes::Bytes::from(bytes.clone()) };
            let _ = decode_message::<KvOp, KvValue>(&frame);
        }
    }
}

//! Property-based tests for the core algebra: partial orders (paper §2.1),
//! value sets (§2.3), and labels (§6.3).

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{
    csc, total_order_consistent, valset, ClientId, Digraph, Label, LabelGenerator, LabelMap,
    OpDescriptor, OpId, ReplicaId, SerialDataType,
};
use proptest::prelude::*;

fn oid(s: u64) -> OpId {
    OpId::new(ClientId(0), s)
}

/// A small DAG generator: edges only from lower to higher node index, so
/// the result is always acyclic.
fn dag(max_nodes: u64) -> impl Strategy<Value = Digraph<OpId>> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let pairs = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 2));
            (Just(n), pairs)
        })
        .prop_map(|(n, pairs)| {
            let mut g = Digraph::new();
            for i in 0..n {
                g.add_node(oid(i));
            }
            for (a, b) in pairs {
                if a < b {
                    g.add_edge(oid(a), oid(b));
                }
            }
            g
        })
}

/// An arbitrary digraph (may be cyclic).
fn any_digraph(max_nodes: u64) -> impl Strategy<Value = Digraph<OpId>> {
    (2..=max_nodes)
        .prop_flat_map(move |n| proptest::collection::vec((0..n, 0..n), 0..(n as usize * 2)))
        .prop_map(|pairs| {
            let mut g = Digraph::new();
            for (a, b) in pairs {
                g.add_edge(oid(a), oid(b));
            }
            g
        })
}

proptest! {
    /// Lemma 2.1 / acyclicity: a DAG built low→high is always a strict
    /// partial order, and gains a topo sort.
    #[test]
    fn dags_are_strict_partial_orders(g in dag(8)) {
        prop_assert!(g.is_strict_partial_order());
        let sorted = g.topo_sort().expect("acyclic");
        prop_assert_eq!(sorted.len(), g.nodes().len());
        prop_assert!(total_order_consistent(&sorted, &g));
    }

    /// Every linear extension is consistent with the generating order, and
    /// the deterministic topo_sort is among them when all fit under the cap.
    #[test]
    fn linear_extensions_are_consistent(g in dag(6)) {
        let exts = g.linear_extensions(5000);
        prop_assert!(!exts.is_empty());
        for e in &exts {
            prop_assert!(total_order_consistent(e, &g));
        }
        let topo = g.topo_sort().expect("acyclic");
        if exts.len() < 5000 {
            prop_assert!(exts.contains(&topo));
        }
    }

    /// Transitive closure: precedes(a,b) on the original equals edge
    /// membership in the closure; closure is idempotent.
    #[test]
    fn closure_matches_reachability(g in dag(8)) {
        let tc = g.transitive_closure();
        for a in g.nodes() {
            for b in g.nodes() {
                prop_assert_eq!(g.precedes(a, b), tc.has_edge(a, b));
            }
        }
        prop_assert_eq!(tc.transitive_closure().edge_count(), tc.edge_count());
    }

    /// Consistency is symmetric and implied by subset (Lemma 2.4 flavour).
    #[test]
    fn consistency_symmetric(a in any_digraph(6), b in any_digraph(6)) {
        prop_assert_eq!(a.consistent_with(&b), b.consistent_with(&a));
        prop_assert_eq!(a.consistent_with(&a), !a.has_cycle());
    }

    /// The induced relation of a partial order is a partial order
    /// (Lemma 2.2), and induced ⊆ original closure.
    #[test]
    fn induced_is_partial_order(g in dag(8), keep_mask in proptest::collection::vec(any::<bool>(), 8)) {
        let keep: BTreeSet<OpId> = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, n)| *n)
            .collect();
        let ind = g.induced_on(&keep);
        prop_assert!(ind.is_strict_partial_order());
        for (a, b) in ind.edges() {
            prop_assert!(g.precedes(&a, &b));
        }
    }

    /// Labels: generators never collide across replicas and always grow.
    #[test]
    fn label_generation_unique_and_monotone(
        replicas in 1u32..5,
        steps in proptest::collection::vec(0u32..5, 1..50),
    ) {
        let mut gens: Vec<LabelGenerator> =
            (0..replicas).map(|r| LabelGenerator::new(ReplicaId(r))).collect();
        let mut seen: BTreeSet<Label> = BTreeSet::new();
        let mut last: BTreeMap<u32, Label> = BTreeMap::new();
        for s in steps {
            let r = s % replicas;
            let l = gens[r as usize].fresh_above(None);
            prop_assert!(seen.insert(l), "label collision");
            if let Some(prev) = last.get(&r) {
                prop_assert!(l > *prev, "labels at a replica must increase");
            }
            last.insert(r, l);
        }
    }

    /// LabelMap.merge_min is commutative/associative/idempotent in effect:
    /// merging any permutation of the same multiset of (id,label) pairs
    /// yields the same map.
    #[test]
    fn label_map_merge_order_independent(
        entries in proptest::collection::vec((0u64..6, 0u64..8, 0u32..3), 1..20),
    ) {
        // Build labels that are unique per (counter, replica); an id may
        // receive several labels, the minimum must win. To respect global
        // label uniqueness (one label names one op), key the counter by id.
        let labeled: Vec<(OpId, Label)> = entries
            .iter()
            .map(|(id, c, r)| (oid(*id), Label::new(c * 10 + id, ReplicaId(*r))))
            .collect();
        let forward: LabelMap = labeled.iter().copied().collect();
        let backward: LabelMap = labeled.iter().rev().copied().collect();
        prop_assert_eq!(forward, backward);
    }
}

/// Counter data type used by the valset properties below.
struct Counter;
#[derive(Clone, PartialEq, Eq, Debug)]
enum COp {
    Inc,
    Read,
}
impl SerialDataType for Counter {
    type State = i64;
    type Operator = COp;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, op: &COp) -> (i64, i64) {
        match op {
            COp::Inc => (s + 1, s + 1),
            COp::Read => (*s, *s),
        }
    }
}

proptest! {
    /// Lemma 2.6 as a property: adding constraints shrinks valsets.
    #[test]
    fn valset_monotone_under_constraints(
        n in 2u64..5,
        extra_edges in proptest::collection::vec((0u64..5, 0u64..5), 0..4),
    ) {
        let dt = Counter;
        let ops: BTreeMap<OpId, OpDescriptor<COp>> = (0..n)
            .map(|i| {
                let op = if i % 2 == 0 { COp::Inc } else { COp::Read };
                (oid(i), OpDescriptor::new(oid(i), op))
            })
            .collect();
        let weak = Digraph::new();
        let mut strong = Digraph::new();
        for (a, b) in extra_edges {
            if a < b && b < n {
                strong.add_edge(oid(a), oid(b));
            }
        }
        for x in ops.keys() {
            let vs_weak = valset(&dt, &0, &ops, &weak, *x, 10_000);
            let vs_strong = valset(&dt, &0, &ops, &strong, *x, 10_000);
            prop_assert!(!vs_strong.is_empty(), "Lemma 2.5");
            for v in &vs_strong {
                prop_assert!(vs_weak.contains(v), "Lemma 2.6 violated");
            }
        }
    }

    /// CSC of a prefix-closed workload is acyclic (Invariant 4.2 precursor):
    /// prev sets only reference earlier ids.
    #[test]
    fn csc_from_ordered_prevs_is_acyclic(
        prevs in proptest::collection::vec(proptest::collection::vec(0u64..20, 0..3), 1..20),
    ) {
        let ops: Vec<OpDescriptor<()>> = prevs
            .iter()
            .enumerate()
            .map(|(i, ps)| {
                let i = i as u64;
                OpDescriptor::new(oid(i), ())
                    .with_prev(ps.iter().filter(|p| **p < i).map(|p| oid(*p)))
            })
            .collect();
        let g = Digraph::from_pairs(csc(&ops));
        prop_assert!(g.is_strict_partial_order());
    }

    /// Lemma 2.7 as a property: when ≺ totally orders a prefix X and every
    /// element of X precedes every element of Y−X, the valset of x ∈ X over
    /// all of Y collapses to the single value along the prefix, and the
    /// valset of y ∈ Y−X equals its valset over Y−X alone computed from the
    /// prefix outcome — the factorization that makes memoization (§10.1)
    /// sound.
    #[test]
    fn lemma_2_7_prefix_factorization(
        prefix_len in 1u64..4,
        suffix_len in 1u64..3,
        suffix_edge in proptest::option::of((0u64..3, 0u64..3)),
    ) {
        let dt = Counter;
        let total = prefix_len + suffix_len;
        let ops: BTreeMap<OpId, OpDescriptor<COp>> = (0..total)
            .map(|i| {
                let op = if i % 2 == 0 { COp::Inc } else { COp::Read };
                (oid(i), OpDescriptor::new(oid(i), op))
            })
            .collect();
        // ≺: chain over the prefix, prefix ≺ suffix, optional suffix edge.
        let mut po = Digraph::chain((0..prefix_len).map(oid));
        for x in 0..prefix_len {
            for y in prefix_len..total {
                po.add_edge(oid(x), oid(y));
            }
        }
        if let Some((a, b)) = suffix_edge {
            let (a, b) = (prefix_len + a, prefix_len + b);
            if a < b && b < total {
                po.add_edge(oid(a), oid(b));
            }
        }

        // Prefix part: valset(x, Y, ≺) = {val(x, X, chain)}.
        let prefix_descs: Vec<&OpDescriptor<COp>> =
            (0..prefix_len).map(|i| &ops[&oid(i)]).collect();
        let (prefix_outcome, prefix_vals) = dt.run(&0, prefix_descs.iter().copied());
        for (i, want) in prefix_vals.iter().enumerate() {
            let vs = valset(&dt, &0, &ops, &po, oid(i as u64), 10_000);
            prop_assert_eq!(
                vs.len(), 1,
                "Lemma 2.7: prefix op must have a unique value over all of Y"
            );
            prop_assert_eq!(&vs[0], want);
        }

        // Suffix part: valset(y, Y, ≺) = valset_{σ'}(y, Y−X, ≺) with
        // σ' = the prefix outcome.
        let suffix_ops: BTreeMap<OpId, OpDescriptor<COp>> = (prefix_len..total)
            .map(|i| (oid(i), ops[&oid(i)].clone()))
            .collect();
        let keep: BTreeSet<OpId> = suffix_ops.keys().copied().collect();
        let suffix_po = po.induced_on(&keep);
        for y in prefix_len..total {
            let whole: BTreeSet<_> =
                valset(&dt, &0, &ops, &po, oid(y), 10_000).into_iter().collect();
            let factored: BTreeSet<_> =
                valset(&dt, &prefix_outcome, &suffix_ops, &suffix_po, oid(y), 10_000)
                    .into_iter()
                    .collect();
            prop_assert_eq!(&whole, &factored, "Lemma 2.7 suffix factorization");
        }
    }
}

// ---------------------------------------------------------------------
// IdSummary (§10.2): model-based equivalence with a plain set
// ---------------------------------------------------------------------

/// A command against both the summary and a `BTreeSet` reference model.
#[derive(Clone, Debug)]
enum SummaryCmd {
    Insert(OpId),
    MergeRandom(Vec<OpId>),
}

fn summary_cmds() -> impl Strategy<Value = Vec<SummaryCmd>> {
    let id = (0u32..4, 0u64..24).prop_map(|(c, s)| OpId::new(ClientId(c), s));
    let cmd = prop_oneof![
        3 => id.clone().prop_map(SummaryCmd::Insert),
        1 => proptest::collection::vec(id, 0..12).prop_map(SummaryCmd::MergeRandom),
    ];
    proptest::collection::vec(cmd, 0..40)
}

proptest! {
    /// After any command sequence, the summary and the reference set agree
    /// on membership, cardinality, and iteration order, and the summary's
    /// explicit storage never exceeds the reference's.
    #[test]
    fn id_summary_matches_set_model(cmds in summary_cmds()) {
        use esds_core::IdSummary;
        let mut summary = IdSummary::new();
        let mut model: BTreeSet<OpId> = BTreeSet::new();
        for cmd in cmds {
            match cmd {
                SummaryCmd::Insert(id) => {
                    let fresh = summary.insert(id);
                    prop_assert_eq!(fresh, model.insert(id));
                }
                SummaryCmd::MergeRandom(ids) => {
                    let other = IdSummary::from_ids(ids.iter().copied());
                    summary.merge(&other);
                    model.extend(ids);
                }
            }
            prop_assert_eq!(summary.len(), model.len());
            prop_assert_eq!(summary.is_empty(), model.is_empty());
        }
        // Exact membership, in the same (client-major) order.
        let got: Vec<OpId> = summary.iter().collect();
        let want: Vec<OpId> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
        // Spot-check membership of absent ids too.
        for c in 0..4u32 {
            for s in 0..26u64 {
                let id = OpId::new(ClientId(c), s);
                prop_assert_eq!(summary.contains(id), model.contains(&id));
            }
        }
        prop_assert!(summary.exception_count() <= model.len());
    }

    /// `covers` is exactly set inclusion.
    #[test]
    fn id_summary_covers_is_inclusion(
        a in proptest::collection::btree_set((0u32..3, 0u64..12), 0..20),
        b in proptest::collection::btree_set((0u32..3, 0u64..12), 0..20),
    ) {
        use esds_core::IdSummary;
        let to_ids = |s: &BTreeSet<(u32, u64)>| -> BTreeSet<OpId> {
            s.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect()
        };
        let sa = to_ids(&a);
        let sb = to_ids(&b);
        let suma = IdSummary::from_ids(sa.iter().copied());
        let sumb = IdSummary::from_ids(sb.iter().copied());
        prop_assert_eq!(suma.covers(&sumb), sb.is_subset(&sa));
        prop_assert!(suma.covers(&suma));
    }

    /// Merge is idempotent, commutative, and associative (it is set union).
    #[test]
    fn id_summary_merge_is_union(
        a in proptest::collection::btree_set((0u32..3, 0u64..12), 0..15),
        b in proptest::collection::btree_set((0u32..3, 0u64..12), 0..15),
    ) {
        use esds_core::IdSummary;
        let sa: IdSummary = a.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect();
        let sb: IdSummary = b.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect();
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        let mut again = ab.clone();
        again.merge(&sb);
        prop_assert_eq!(&again, &ab);
        // Dense union compacts: watermark coverage implies few exceptions.
        let union: BTreeSet<OpId> = ab.iter().collect();
        prop_assert_eq!(union.len(), ab.len());
    }

    /// Merge is associative: (a ∪ b) ∪ c = a ∪ (b ∪ c). Together with the
    /// commutativity/idempotence properties above this makes gossip merge
    /// order-insensitive — duplicated, reordered, or re-batched summary
    /// exchanges all converge to the same state.
    #[test]
    fn id_summary_merge_is_associative(
        a in proptest::collection::btree_set((0u32..3, 0u64..12), 0..15),
        b in proptest::collection::btree_set((0u32..3, 0u64..12), 0..15),
        c in proptest::collection::btree_set((0u32..3, 0u64..12), 0..15),
    ) {
        use esds_core::IdSummary;
        let to_sum = |s: &BTreeSet<(u32, u64)>| -> IdSummary {
            s.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect()
        };
        let (sa, sb, sc) = (to_sum(&a), to_sum(&b), to_sum(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// `covers` is a partial order (reflexive, antisymmetric, transitive)
    /// that agrees with `contains` pointwise.
    #[test]
    fn id_summary_covers_is_partial_order(
        a in proptest::collection::btree_set((0u32..3, 0u64..10), 0..15),
        b in proptest::collection::btree_set((0u32..3, 0u64..10), 0..15),
        c in proptest::collection::btree_set((0u32..3, 0u64..10), 0..15),
    ) {
        use esds_core::IdSummary;
        let to_sum = |s: &BTreeSet<(u32, u64)>| -> IdSummary {
            s.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect()
        };
        let (sa, sb, sc) = (to_sum(&a), to_sum(&b), to_sum(&c));
        // Reflexive.
        prop_assert!(sa.covers(&sa));
        // Pointwise agreement with contains.
        prop_assert_eq!(sa.covers(&sb), sb.iter().all(|id| sa.contains(id)));
        // Antisymmetric: mutual coverage is equality (the
        // watermark/exception representation is canonical, so set
        // equality is structural equality).
        if sa.covers(&sb) && sb.covers(&sa) {
            prop_assert_eq!(&sa, &sb);
        }
        // Transitive.
        if sa.covers(&sb) && sb.covers(&sc) {
            prop_assert!(sa.covers(&sc));
        }
    }

    /// `from_ids` round-trips through `iter`: rebuilding a summary from
    /// its own iteration reproduces it exactly (canonical representation),
    /// and iteration is duplicate-free and sorted.
    #[test]
    fn id_summary_from_ids_roundtrips_through_iter(
        ids in proptest::collection::vec((0u32..4, 0u64..20), 0..40),
    ) {
        use esds_core::IdSummary;
        let s = IdSummary::from_ids(ids.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)));
        let listed: Vec<OpId> = s.iter().collect();
        let mut sorted = listed.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&listed, &sorted, "iter is sorted and duplicate-free");
        prop_assert_eq!(listed.len(), s.len());
        let rebuilt = IdSummary::from_ids(listed);
        prop_assert_eq!(rebuilt, s);
    }

    /// `difference` is set subtraction, and merging the difference back
    /// restores the union — the identity the batched-gossip receive path
    /// relies on (fold in `incoming − seen`, then `seen ∪= incoming`).
    #[test]
    fn id_summary_difference_is_set_minus(
        a in proptest::collection::btree_set((0u32..3, 0u64..14), 0..20),
        b in proptest::collection::btree_set((0u32..3, 0u64..14), 0..20),
    ) {
        use esds_core::IdSummary;
        let to_ids = |s: &BTreeSet<(u32, u64)>| -> BTreeSet<OpId> {
            s.iter().map(|(c, q)| OpId::new(ClientId(*c), *q)).collect()
        };
        let (ia, ib) = (to_ids(&a), to_ids(&b));
        let sa = IdSummary::from_ids(ia.iter().copied());
        let sb = IdSummary::from_ids(ib.iter().copied());
        let d = sa.difference(&sb);
        let got: BTreeSet<OpId> = d.iter().collect();
        let want: BTreeSet<OpId> = ia.difference(&ib).copied().collect();
        prop_assert_eq!(&got, &want);
        prop_assert!(sa.covers(&d));
        prop_assert!(got.iter().all(|id| !sb.contains(*id)));
        // b ∪ (a − b) = b ∪ a.
        let mut patched = sb.clone();
        patched.merge(&d);
        let mut union = sb.clone();
        union.merge(&sa);
        prop_assert_eq!(patched, union);
    }

    /// Minimal movement (the rebalancing differential): growing a
    /// routing table from `S` to `S+1` shards relocates at most
    /// `slots/S + 1` slots (in fact exactly `⌊slots/(S+1)⌋`), every key
    /// on an unmoved slot routes identically before and after, every
    /// moved key lands on the new shard, and the result is balanced to
    /// within one slot. Compare `hash mod S`, which remaps almost every
    /// key when `S` changes.
    #[test]
    fn migration_add_shard_is_minimal_and_differential(
        s in 1u32..9,
        raw_keys in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        use esds_core::{MigrationPlan, RoutingTable};
        let before = RoutingTable::uniform(s);
        let plan = MigrationPlan::add_shard(&before);
        prop_assert!(
            plan.moves().len() <= before.n_slots() as usize / s as usize + 1,
            "plan moves {} slots, bound is slots/S + 1 = {}",
            plan.moves().len(),
            before.n_slots() as usize / s as usize + 1
        );
        prop_assert_eq!(plan.moves().len(), before.n_slots() as usize / (s + 1) as usize);
        let mut after = before.clone();
        after.apply(&plan);
        prop_assert_eq!(after.version(), before.version() + 1);
        prop_assert_eq!(after.n_shards(), s + 1);
        let moved = plan.slots();
        for raw in &raw_keys {
            let key = format!("k{raw}");
            let slot = before.slot_of_key(&key);
            prop_assert_eq!(slot, after.slot_of_key(&key), "a key's slot never changes");
            if moved.contains(&slot) {
                prop_assert_eq!(after.shard_of_key(&key), s, "moved keys go to the new shard");
            } else {
                prop_assert_eq!(
                    before.shard_of_key(&key),
                    after.shard_of_key(&key),
                    "unmoved keys must route identically"
                );
            }
        }
        let load = after.load();
        let (min, max) = (
            *load.iter().min().expect("nonempty"),
            *load.iter().max().expect("nonempty"),
        );
        prop_assert!(max - min <= 1, "unbalanced after add: {:?}", load);
    }

    /// Draining relocates exactly the drained shard's slots; keys on
    /// every other shard route identically, and nothing routes to the
    /// drained shard afterwards.
    #[test]
    fn migration_drain_moves_only_the_drained_keyspace(
        s in 2u32..9,
        victim_raw in 0u32..10_000,
        raw_keys in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        use esds_core::{MigrationPlan, RoutingTable};
        let victim = victim_raw % s;
        let before = RoutingTable::uniform(s);
        let owned = before.slots_of(victim);
        let plan = MigrationPlan::drain_shard(&before, victim);
        prop_assert_eq!(plan.moves().len(), owned.len());
        let mut after = before.clone();
        after.apply(&plan);
        prop_assert!(after.slots_of(victim).is_empty());
        for raw in &raw_keys {
            let key = format!("k{raw}");
            prop_assert!(after.shard_of_key(&key) != victim);
            if before.shard_of_key(&key) != victim {
                prop_assert_eq!(before.shard_of_key(&key), after.shard_of_key(&key));
            }
        }
    }

    /// Plan computation is deterministic (every component of a
    /// deployment derives the identical plan from the same table), and
    /// add-then-drain of the new shard is conservative: nothing ever
    /// routes to a shard outside the table's range.
    #[test]
    fn migration_plans_are_deterministic(s in 1u32..9) {
        use esds_core::{MigrationPlan, RoutingTable};
        let t = RoutingTable::uniform(s);
        prop_assert_eq!(MigrationPlan::add_shard(&t), MigrationPlan::add_shard(&t));
        let mut grown = t.clone();
        grown.apply(&MigrationPlan::add_shard(&t));
        let drain = MigrationPlan::drain_shard(&grown, s);
        let mut back = grown.clone();
        back.apply(&drain);
        for slot in 0..back.n_slots() {
            prop_assert!(back.shard_of_slot(slot) < back.n_shards());
            prop_assert!(back.shard_of_slot(slot) != s, "drained shard still owns a slot");
        }
    }
}

//! Identifiers for clients, replicas, and operations.
//!
//! Section 6.2 of the paper assumes a static function `client : ℐ → C`
//! mapping operation identifiers to the client that issued them ("clients
//! encode their identity into the operation identifier"). [`OpId`] realizes
//! this by embedding the [`ClientId`] directly, together with a per-client
//! sequence number, which also gives the uniqueness required by
//! Invariant 4.1.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a client of the data service.
///
/// Clients issue operation descriptors through a front end and receive
/// responses; see the `Users` automaton (paper Fig. 1).
///
/// # Examples
///
/// ```
/// use esds_core::ClientId;
/// let c = ClientId(3);
/// assert_eq!(c.to_string(), "c3");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

/// Identity of a replica maintaining a full copy of the data object.
///
/// The algorithm (paper Section 6) requires at least two replicas; replica
/// identities also parameterize the per-replica label sets 𝓛ᵣ (see
/// [`crate::Label`]).
///
/// # Examples
///
/// ```
/// use esds_core::ReplicaId;
/// assert_eq!(ReplicaId(0).to_string(), "r0");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(v: u32) -> Self {
        ReplicaId(v)
    }
}

/// Unique identifier of a requested operation (an element of ℐ in the paper).
///
/// Identifiers must be unique across the execution (Invariant 4.1). The pair
/// (issuing client, per-client sequence number) guarantees this as long as
/// each client numbers its own requests consecutively, which the front end
/// enforces.
///
/// The total order on `OpId` (client-major, then sequence) is *not* the
/// eventual total order of the service — it is only used for deterministic
/// iteration of sets and maps.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpId};
/// let id = OpId::new(ClientId(2), 7);
/// assert_eq!(id.client(), ClientId(2));
/// assert_eq!(id.seq(), 7);
/// assert_eq!(id.to_string(), "c2:7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OpId {
    client: ClientId,
    seq: u64,
}

impl OpId {
    /// Creates an identifier for the `seq`-th operation of `client`.
    pub fn new(client: ClientId, seq: u64) -> Self {
        OpId { client, seq }
    }

    /// The static `client(·)` function of paper Section 6.2.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Per-client sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.client, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_uniqueness_by_components() {
        let a = OpId::new(ClientId(1), 0);
        let b = OpId::new(ClientId(1), 1);
        let c = OpId::new(ClientId(2), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, OpId::new(ClientId(1), 0));
    }

    #[test]
    fn op_id_order_is_client_major() {
        let a = OpId::new(ClientId(1), 99);
        let b = OpId::new(ClientId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(5).to_string(), "c5");
        assert_eq!(ReplicaId(1).to_string(), "r1");
        assert_eq!(OpId::new(ClientId(0), 3).to_string(), "c0:3");
    }

    #[test]
    fn client_function_is_static() {
        // Section 6.2: client(x.id) is derivable from the id alone.
        let id = OpId::new(ClientId(9), 42);
        assert_eq!(id.client(), ClientId(9));
    }
}

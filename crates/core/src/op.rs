//! Operation descriptors and client-specified constraints (paper §2.3).
//!
//! A client requests an operation by issuing an *operation descriptor*
//! consisting of a data-type operator, a unique identifier, a `prev` set of
//! identifiers of operations that must precede it, and a `strict` flag.
//! The `prev` sets of a set of operations induce the *client-specified
//! constraints* relation `CSC(X) = {(y.id, x.id) : x ∈ X ∧ y.id ∈ x.prev}`.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::OpId;

/// An operation descriptor (an element of 𝒪 in the paper, §2.3).
///
/// `O` is the operator type of the serial data type being accessed (see
/// [`crate::SerialDataType`]).
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpDescriptor, OpId};
///
/// let w = OpDescriptor::new(OpId::new(ClientId(0), 0), "write(1)");
/// let r = OpDescriptor::new(OpId::new(ClientId(0), 1), "read")
///     .with_prev([w.id])
///     .with_strict(true);
/// assert!(r.strict);
/// assert!(r.prev.contains(&w.id));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OpDescriptor<O> {
    /// Unique operation identifier (`x.id`).
    pub id: OpId,
    /// The data-type operator to apply (`x.op`).
    pub op: O,
    /// Identifiers of operations that must be applied before this one
    /// (`x.prev`). May only name operations requested earlier (well-
    /// formedness, paper §4).
    pub prev: BTreeSet<OpId>,
    /// Whether the operation must be *stable* at response time (`x.strict`):
    /// its response is then consistent with the eventual total order and is
    /// never invalidated by later reordering.
    pub strict: bool,
}

impl<O> OpDescriptor<O> {
    /// Creates a nonstrict descriptor with an empty `prev` set.
    pub fn new(id: OpId, op: O) -> Self {
        OpDescriptor {
            id,
            op,
            prev: BTreeSet::new(),
            strict: false,
        }
    }

    /// Replaces the `prev` set.
    #[must_use]
    pub fn with_prev(mut self, prev: impl IntoIterator<Item = OpId>) -> Self {
        self.prev = prev.into_iter().collect();
        self
    }

    /// Sets the strict flag.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Approximate encoded size in bytes, the shared estimate of every
    /// gossip sizing model (`GossipMsg`/`BatchedGossipMsg`/
    /// `SummarizedGossip::approx_bytes`): id (16) + a small operator
    /// estimate (8) + prev entries (16 each) + strict/overhead (16).
    /// Keeping one copy keeps the §10.4 byte comparisons honest — tuning
    /// the estimate skews every strategy's column together.
    pub fn approx_bytes(&self) -> usize {
        16 + 8 + 16 * self.prev.len() + 16
    }

    /// Maps the operator, preserving id/prev/strict. Useful when wrapping a
    /// data type (e.g. instrumentation).
    pub fn map_op<P>(self, f: impl FnOnce(O) -> P) -> OpDescriptor<P> {
        OpDescriptor {
            id: self.id,
            op: f(self.op),
            prev: self.prev,
            strict: self.strict,
        }
    }
}

impl<O: fmt::Display> fmt::Display for OpDescriptor<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}{}]",
            self.id,
            self.op,
            if self.strict { ", strict" } else { "" }
        )
    }
}

/// The client-specified constraints `CSC(X)` of a set of operations
/// (paper §2.3): the set of pairs `(y.id, x.id)` with `x ∈ X` and
/// `y.id ∈ x.prev`, read "y must be applied before x".
///
/// Lemma 2.4: `X ⊆ Y ⟹ CSC(X) ⊆ CSC(Y)` — immediate from this definition
/// because each descriptor contributes its pairs independently.
///
/// # Examples
///
/// ```
/// use esds_core::{csc, ClientId, OpDescriptor, OpId};
/// let a = OpId::new(ClientId(0), 0);
/// let b = OpId::new(ClientId(0), 1);
/// let ops = [
///     OpDescriptor::new(a, "w"),
///     OpDescriptor::new(b, "r").with_prev([a]),
/// ];
/// let pairs = csc(&ops);
/// assert_eq!(pairs, vec![(a, b)]);
/// ```
pub fn csc<'a, O: 'a>(ops: impl IntoIterator<Item = &'a OpDescriptor<O>>) -> Vec<(OpId, OpId)> {
    let mut out = Vec::new();
    for x in ops {
        for y in &x.prev {
            out.push((*y, x.id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn descriptor_builders() {
        let d = OpDescriptor::new(id(0, 0), 7u32)
            .with_prev([id(0, 1), id(1, 0)])
            .with_strict(true);
        assert_eq!(d.prev.len(), 2);
        assert!(d.strict);
        assert_eq!(d.op, 7);
    }

    #[test]
    fn csc_collects_prev_pairs() {
        let ops = vec![
            OpDescriptor::new(id(0, 0), ()),
            OpDescriptor::new(id(0, 1), ()).with_prev([id(0, 0)]),
            OpDescriptor::new(id(1, 0), ()).with_prev([id(0, 0), id(0, 1)]),
        ];
        let mut pairs = csc(&ops);
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (id(0, 0), id(0, 1)),
                (id(0, 0), id(1, 0)),
                (id(0, 1), id(1, 0)),
            ]
        );
    }

    #[test]
    fn csc_monotone_lemma_2_4() {
        let x = vec![OpDescriptor::new(id(0, 1), ()).with_prev([id(0, 0)])];
        let mut y = x.clone();
        y.push(OpDescriptor::new(id(1, 0), ()).with_prev([id(0, 1)]));
        let cx: std::collections::BTreeSet<_> = csc(&x).into_iter().collect();
        let cy: std::collections::BTreeSet<_> = csc(&y).into_iter().collect();
        assert!(cx.is_subset(&cy));
    }

    #[test]
    fn map_op_preserves_metadata() {
        let d = OpDescriptor::new(id(2, 3), 10u32).with_strict(true);
        let e = d.map_op(|v| v as u64 * 2);
        assert_eq!(e.op, 20);
        assert!(e.strict);
        assert_eq!(e.id, id(2, 3));
    }

    #[test]
    fn display_includes_strictness() {
        let d = OpDescriptor::new(id(0, 0), "inc").with_strict(true);
        assert_eq!(d.to_string(), "c0:0[inc, strict]");
        let d = OpDescriptor::new(id(0, 1), "read");
        assert_eq!(d.to_string(), "c0:1[read]");
    }
}

//! Keyspace partitioning for sharded deployments.
//!
//! The paper treats one serial data type replicated by one group of
//! replicas. The Section 10 commutativity insight — independent operations
//! can be applied in any order — holds *trivially* at a coarser grain:
//! operations on **disjoint objects** commute and are mutually oblivious,
//! whatever the data type's own algebra says. A service can therefore
//! hash-partition a keyed data type across `S` independent ESDS replica
//! groups ("shards"), each running the unmodified Section 6 algorithm on
//! its slice of the keyspace, and aggregate throughput scales with `S`
//! instead of plateauing at one group's gossip capacity.
//!
//! This module holds the vocabulary that the sharded layers
//! (`esds-harness`'s `ShardedSimSystem`, `esds-runtime`'s
//! `ShardedService`) share:
//!
//! * [`KeyedDataType`] — a serial data type whose operators expose the
//!   partition key they touch;
//! * [`ShardRouter`] — the stable hash partitioner mapping keys to shards;
//! * [`ShardedOpId`] — operation identifiers in the *global* namespace of
//!   a sharded service (each shard keeps its own per-group [`OpId`](crate::OpId)s).
//!
//! Cross-shard `prev` constraints are enforced by the sharded layers, not
//! here: a dependent operation is held back until every foreign-shard
//! predecessor has been *responded to* by its own group, after which the
//! constraint is vacuous for the state (disjoint objects commute) and the
//! client-observed order is preserved.

use std::fmt;

use crate::ids::ClientId;
use crate::SerialDataType;

/// A serial data type whose operators name the partition of the object
/// state they touch, making the type shardable across independent replica
/// groups.
///
/// `shard_key` must be **stable** (the same operator always yields the
/// same key) and **complete**: two operators with different keys must be
/// independent in the [`crate::CommutativitySpec`] sense — they commute
/// and neither observes the other. Keys partition the object state; an
/// operator that touches the whole object (e.g. a list-all-keys query)
/// returns `None` and is routed to the fixed *home shard*, where it
/// observes only that shard's slice (scatter-gather reads are future
/// work; see `ROADMAP.md`).
///
/// # Examples
///
/// ```
/// use esds_core::{KeyedDataType, SerialDataType};
///
/// /// Two named counters, partitionable by name.
/// #[derive(Clone)]
/// struct Pair;
/// #[derive(Clone, PartialEq, Debug)]
/// enum PairOp { IncA, IncB }
/// impl SerialDataType for Pair {
///     type State = (i64, i64);
///     type Operator = PairOp;
///     type Value = i64;
///     fn initial_state(&self) -> (i64, i64) { (0, 0) }
///     fn apply(&self, s: &(i64, i64), op: &PairOp) -> ((i64, i64), i64) {
///         match op {
///             PairOp::IncA => ((s.0 + 1, s.1), s.0 + 1),
///             PairOp::IncB => ((s.0, s.1 + 1), s.1 + 1),
///         }
///     }
/// }
/// impl KeyedDataType for Pair {
///     fn shard_key<'a>(&self, op: &'a PairOp) -> Option<&'a str> {
///         Some(match op { PairOp::IncA => "a", PairOp::IncB => "b" })
///     }
/// }
/// ```
pub trait KeyedDataType: SerialDataType {
    /// The partition key `op` touches, or `None` for a whole-object
    /// operator that cannot be attributed to a single partition.
    fn shard_key<'a>(&self, op: &'a Self::Operator) -> Option<&'a str>;
}

/// 64-bit FNV-1a over a byte string — the stable, dependency-free hash
/// the router uses. Stability matters: every front end and every harness
/// must agree on the key→shard map without coordination, across processes
/// and across runs.
pub const fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(PRIME);
        i += 1;
    }
    h
}

/// The shard every keyless (whole-object) operator is routed to.
pub const HOME_SHARD: u32 = 0;

/// Hash-partitions the keyspace of a [`KeyedDataType`] across `S`
/// independent replica groups.
///
/// Routing is pure and deterministic: shard = FNV-1a(key) mod S. Keyless
/// operators go to [`HOME_SHARD`]. Every component of a sharded
/// deployment constructs its own equal router from `n_shards` alone.
///
/// # Examples
///
/// ```
/// use esds_core::ShardRouter;
///
/// let r = ShardRouter::new(4);
/// assert_eq!(r.n_shards(), 4);
/// assert_eq!(r.shard_of_key("user:17"), r.shard_of_key("user:17"));
/// assert!(r.shard_of_key("user:17") < 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ShardRouter {
    n_shards: u32,
}

impl ShardRouter {
    /// A router over `n_shards` shards (ids `0..n_shards`).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: u32) -> Self {
        assert!(n_shards > 0, "a sharded service needs at least one shard");
        ShardRouter { n_shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: &str) -> u32 {
        (fnv1a_64(key.as_bytes()) % self.n_shards as u64) as u32
    }

    /// The shard an operator is routed to: its key's owner, or
    /// [`HOME_SHARD`] for keyless operators.
    pub fn route<T: KeyedDataType>(&self, dt: &T, op: &T::Operator) -> u32 {
        match dt.shard_key(op) {
            Some(k) => self.shard_of_key(k),
            None => HOME_SHARD,
        }
    }
}

/// Walks a `prev` DAG and collects the **local frontier** for `shard`:
/// the per-shard identifiers of every same-shard operation reachable from
/// `prev` through foreign-shard hops.
///
/// This is the one subtle rule of cross-shard `prev` enforcement, shared
/// by the simulated (`esds-harness`) and threaded (`esds-runtime`)
/// sharded layers: an answered foreign predecessor's *edge* may be
/// dropped (its response precedes the dependent's request), but the
/// transitive ordering it carried may not — in the chain
/// `A (shard s) ← B (foreign) ← C (shard s)`, `C` must still be ordered
/// after `A` within `s`. The walk therefore **descends through** foreign
/// nodes and **stops at** same-shard nodes, whose own submitted `prev`
/// already carries their same-shard transitive closure.
///
/// `node` resolves one global identifier to `(its shard, its local id,
/// its global prev set)`; callers interleave their own side effects there
/// (the runtime layer awaits each foreign predecessor's response inside
/// it). Each node is visited at most once.
///
/// # Examples
///
/// ```
/// use esds_core::shard_frontier;
///
/// // A (shard 0, local "a") ← B (shard 1, local "b") ← C's prev.
/// let node = |g: u8| match g {
///     0 => (0, "a", vec![]),
///     1 => (1, "b", vec![0]),
///     _ => unreachable!(),
/// };
/// // C lands on shard 0: inherits A through the foreign hop B.
/// assert_eq!(shard_frontier(&[1], 0, node), vec!["a"]);
/// // C lands on shard 1: B itself is the frontier.
/// assert_eq!(shard_frontier(&[1], 1, node), vec!["b"]);
/// ```
pub fn shard_frontier<Id, L>(
    prev: &[Id],
    shard: u32,
    mut node: impl FnMut(Id) -> (u32, L, Vec<Id>),
) -> Vec<L>
where
    Id: Ord + Copy,
{
    let mut out = Vec::new();
    let mut visited = std::collections::BTreeSet::new();
    let mut stack: Vec<Id> = prev.to_vec();
    while let Some(g) = stack.pop() {
        if !visited.insert(g) {
            continue;
        }
        let (s, local, prevs) = node(g);
        if s == shard {
            out.push(local);
        } else {
            stack.extend(prevs);
        }
    }
    out
}

/// An operation identifier in the **global** namespace of a sharded
/// service.
///
/// Each shard is an unmodified ESDS instance with its own per-group
/// [`OpId`](crate::OpId) space (per-client sequence numbers restart in every shard), so
/// a global handle is needed to name operations across shards — in `prev`
/// sets spanning shards, and when looking responses up. Like [`OpId`](crate::OpId), the
/// pair (client, global sequence) is unique as long as each client numbers
/// its sharded submissions consecutively, which the sharded layers
/// enforce.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, ShardedOpId};
/// let g = ShardedOpId::new(ClientId(2), 7);
/// assert_eq!(g.client(), ClientId(2));
/// assert_eq!(g.to_string(), "c2/7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardedOpId {
    client: ClientId,
    seq: u64,
}

impl ShardedOpId {
    /// The `seq`-th sharded submission of `client`.
    pub fn new(client: ClientId, seq: u64) -> Self {
        ShardedOpId { client, seq }
    }

    /// The issuing client.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The client's global submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl fmt::Display for ShardedOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.client, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(5);
        for k in ["", "a", "k1", "k2", "user:999", "漢字"] {
            let s = r.shard_of_key(k);
            assert!(s < 5);
            assert_eq!(s, r.shard_of_key(k), "routing must be deterministic");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        assert_eq!(r.shard_of_key("anything"), 0);
    }

    #[test]
    fn many_keys_spread_over_shards() {
        let r = ShardRouter::new(8);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            seen.insert(r.shard_of_key(&format!("k{i}")));
        }
        assert_eq!(seen.len(), 8, "256 keys must hit all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn frontier_descends_foreign_and_stops_at_local() {
        // Diamond: D's prev = {B, C}; B and C are foreign hops both
        // leading to local A. A must appear exactly once.
        let node = |g: u8| match g {
            0 => (0u32, 'a', vec![]),
            1 => (1, 'b', vec![0]),
            2 => (2, 'c', vec![0]),
            _ => unreachable!(),
        };
        assert_eq!(shard_frontier(&[1, 2], 0, node), vec!['a']);
        // From shard 1's viewpoint: B is local, C is descended through.
        let mut f = shard_frontier(&[1, 2], 1, node);
        f.sort();
        assert_eq!(f, vec!['b']);
        // No predecessors at all: empty frontier.
        assert_eq!(shard_frontier::<u8, char>(&[], 0, node), Vec::<char>::new());
    }

    #[test]
    fn sharded_id_display_and_accessors() {
        let g = ShardedOpId::new(ClientId(3), 11);
        assert_eq!(g.client(), ClientId(3));
        assert_eq!(g.seq(), 11);
        assert_eq!(g.to_string(), "c3/11");
        assert!(g < ShardedOpId::new(ClientId(3), 12));
    }
}

//! Keyspace partitioning for sharded deployments.
//!
//! The paper treats one serial data type replicated by one group of
//! replicas. The Section 10 commutativity insight — independent operations
//! can be applied in any order — holds *trivially* at a coarser grain:
//! operations on **disjoint objects** commute and are mutually oblivious,
//! whatever the data type's own algebra says. A service can therefore
//! hash-partition a keyed data type across `S` independent ESDS replica
//! groups ("shards"), each running the unmodified Section 6 algorithm on
//! its slice of the keyspace, and aggregate throughput scales with `S`
//! instead of plateauing at one group's gossip capacity.
//!
//! This module holds the vocabulary that the sharded layers
//! (`esds-harness`'s `ShardedSimSystem`, `esds-runtime`'s
//! `ShardedService`) share:
//!
//! * [`KeyedDataType`] — a serial data type whose operators expose the
//!   partition key they touch;
//! * [`RoutingTable`] — the versioned `key → slot → shard` indirection
//!   that makes rebalancing possible: keys hash onto a fixed set of
//!   [`SLOT_COUNT`] slots, and only the small slot→shard map changes when
//!   shards are added or drained;
//! * [`MigrationPlan`] — the minimal set of slot moves taking one table
//!   to the next version (adding a shard relocates only ~`1/S` of the
//!   keyspace, never rehashing the rest);
//! * [`ShardRouter`] — the stable partitioner mapping keys to shards,
//!   routing through a [`RoutingTable`];
//! * [`ShardedOpId`] — operation identifiers in the *global* namespace of
//!   a sharded service (each shard keeps its own per-group [`OpId`](crate::OpId)s).
//!
//! Cross-shard `prev` constraints are enforced by the sharded layers, not
//! here: a dependent operation is held back until every foreign-shard
//! predecessor has been *responded to* by its own group, after which the
//! constraint is vacuous for the state (disjoint objects commute) and the
//! client-observed order is preserved.
//!
//! The *slot migration protocol itself* also lives in the deployment
//! layers (`harness::sharded`, `runtime::sharded`); this module only
//! defines the plan/table algebra they agree on. The unit of transfer is
//! a slot's **stable prefix**: once every operation of a slot is stable,
//! its effect order is final at every replica of the source group, so
//! replaying that prefix onto the receiving group reproduces exactly the
//! state every future strict or eventually-serialized response must
//! reflect — the paper's checkpoint-from-stable-state idea applied to
//! rebalancing instead of recovery.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::ClientId;
use crate::SerialDataType;

/// A serial data type whose operators name the partition of the object
/// state they touch, making the type shardable across independent replica
/// groups.
///
/// `shard_key` must be **stable** (the same operator always yields the
/// same key) and **complete**: two operators with different keys must be
/// independent in the [`crate::CommutativitySpec`] sense — they commute
/// and neither observes the other. Keys partition the object state; an
/// operator that touches the whole object (e.g. a list-all-keys query)
/// returns `None`. A keyless operator that additionally implements
/// [`KeyedDataType::merge_gathered`] is a **gatherable query**: the
/// sharded layers execute it as one read-only sub-operation per involved
/// shard and merge the partial answers. A keyless operator *without* a
/// merge is un-gatherable and the deployment layers must reject it
/// rather than answer from a single shard's slice.
///
/// # Examples
///
/// ```
/// use esds_core::{KeyedDataType, SerialDataType};
///
/// /// Two named counters, partitionable by name.
/// #[derive(Clone)]
/// struct Pair;
/// #[derive(Clone, PartialEq, Debug)]
/// enum PairOp { IncA, IncB }
/// impl SerialDataType for Pair {
///     type State = (i64, i64);
///     type Operator = PairOp;
///     type Value = i64;
///     fn initial_state(&self) -> (i64, i64) { (0, 0) }
///     fn apply(&self, s: &(i64, i64), op: &PairOp) -> ((i64, i64), i64) {
///         match op {
///             PairOp::IncA => ((s.0 + 1, s.1), s.0 + 1),
///             PairOp::IncB => ((s.0, s.1 + 1), s.1 + 1),
///         }
///     }
/// }
/// impl KeyedDataType for Pair {
///     fn shard_key<'a>(&self, op: &'a PairOp) -> Option<&'a str> {
///         Some(match op { PairOp::IncA => "a", PairOp::IncB => "b" })
///     }
/// }
/// ```
pub trait KeyedDataType: SerialDataType {
    /// The partition key `op` touches, or `None` for a whole-object
    /// operator that cannot be attributed to a single partition.
    fn shard_key<'a>(&self, op: &'a Self::Operator) -> Option<&'a str>;

    /// Merges the per-shard partial answers of a whole-object query into
    /// the answer a single unsharded deployment would have returned, or
    /// `None` if `op` cannot be gathered (the default: a keyless operator
    /// with no merge is rejected by the deployment layers instead of
    /// being mis-answered from one shard's slice).
    ///
    /// A gather supplies one `parts` entry per involved shard, in
    /// ascending shard order; [`KeyedDataType::is_gatherable`] probes
    /// with an empty list, so implementations must answer `Some` for any
    /// number of parts (zero included). A gatherable operator must be a
    /// **read-only query**: the sharded layers may re-scatter it
    /// (retries, NAK re-routes), so executing a sub-operation twice on
    /// the same shard must be observably idempotent — true of any
    /// mutation-free operator.
    fn merge_gathered(&self, op: &Self::Operator, parts: Vec<Self::Value>) -> Option<Self::Value> {
        let _ = (op, parts);
        None
    }

    /// Whether `op` is a whole-object query the sharded layers can
    /// scatter-gather (keyless *and* mergeable). Single-key operators
    /// return `false`: they route to exactly one shard.
    fn is_gatherable(&self, op: &Self::Operator) -> bool {
        self.shard_key(op).is_none() && self.merge_gathered(op, Vec::new()).is_some()
    }
}

/// 64-bit FNV-1a over a byte string — the stable, dependency-free hash
/// the router uses. Stability matters: every front end and every harness
/// must agree on the key→shard map without coordination, across processes
/// and across runs.
pub const fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(PRIME);
        i += 1;
    }
    h
}

/// The fixed number of slots a [`RoutingTable`] partitions the keyspace
/// into. Keys hash onto slots; slots map onto shards. The count never
/// changes over the life of a deployment — rebalancing edits only the
/// slot→shard map — so `256` bounds both the granularity of a migration
/// (a shard owns multiples of 1/256 of the keyspace) and the size of the
/// table every router carries.
pub const SLOT_COUNT: u16 = 256;

/// The slot every keyless (whole-object) operator is attributed to.
/// Keyless operators follow this slot's owner through migrations.
pub const HOME_SLOT: u16 = 0;

/// The shard every keyless (whole-object) operator is routed to **under
/// the initial uniform table** (the owner of [`HOME_SLOT`]). After a
/// migration moves [`HOME_SLOT`], keyless operators follow the table.
pub const HOME_SHARD: u32 = 0;

/// The versioned `slot → shard` map at the heart of rebalancing.
///
/// A key's slot (`FNV-1a(key) mod` [`SLOT_COUNT`]) never changes; which
/// shard *owns* the slot does, one [`MigrationPlan`] at a time. The
/// `version` counts applied plans, so every component of a deployment can
/// tell whether a routing decision was made against the current table.
///
/// # Examples
///
/// ```
/// use esds_core::{MigrationPlan, RoutingTable};
///
/// let mut t = RoutingTable::uniform(2);
/// assert_eq!(t.version(), 0);
/// let owner = t.shard_of_key("user:17");
/// // Adding a shard moves only ~1/3 of the slots; unmoved keys keep
/// // their owner.
/// let plan = MigrationPlan::add_shard(&t);
/// t.apply(&plan);
/// assert_eq!(t.version(), 1);
/// assert_eq!(t.n_shards(), 3);
/// if !plan.slots().contains(&t.slot_of_key("user:17")) {
///     assert_eq!(t.shard_of_key("user:17"), owner);
/// }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutingTable {
    version: u64,
    /// `slots[s]` = shard owning slot `s`.
    slots: Vec<u32>,
    n_shards: u32,
}

impl RoutingTable {
    /// The initial table over `n_shards` shards and [`SLOT_COUNT`] slots:
    /// slot `s` belongs to shard `s mod n_shards`, version 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn uniform(n_shards: u32) -> Self {
        Self::with_slots(n_shards, SLOT_COUNT)
    }

    /// A uniform table with an explicit slot count (tests; production
    /// deployments use [`RoutingTable::uniform`] so every component
    /// agrees on the count).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds `n_slots` (a shard must
    /// own at least one slot to receive any keys).
    pub fn with_slots(n_shards: u32, n_slots: u16) -> Self {
        assert!(n_shards > 0, "a sharded service needs at least one shard");
        assert!(
            n_shards as u64 <= n_slots as u64,
            "need at least one slot per shard"
        );
        RoutingTable {
            version: 0,
            slots: (0..n_slots).map(|s| s as u32 % n_shards).collect(),
            n_shards,
        }
    }

    /// Reassembles a table from its broadcast form: the version counter,
    /// the shard count, and the raw `slot → shard` map. This is the
    /// wire-decoding constructor — a sharded TCP deployment ships the
    /// authoritative table to stale clients inside a version-mismatch
    /// NAK, and the receiver rebuilds it here. The inverse accessors are
    /// [`RoutingTable::version`], [`RoutingTable::n_shards`], and
    /// [`RoutingTable::slot_owners`].
    ///
    /// # Errors
    ///
    /// Returns a static description of the defect if the map is empty,
    /// oversized (> [`SLOT_COUNT`] entries — no honest table is ever
    /// bigger), or names a shard ≥ `n_shards`.
    pub fn from_parts(version: u64, n_shards: u32, slots: Vec<u32>) -> Result<Self, &'static str> {
        if n_shards == 0 {
            return Err("routing table must address at least one shard");
        }
        if slots.is_empty() || slots.len() > SLOT_COUNT as usize {
            return Err("routing table slot map has an impossible size");
        }
        if slots.iter().any(|s| *s >= n_shards) {
            return Err("routing table slot map names an out-of-range shard");
        }
        Ok(RoutingTable {
            version,
            slots,
            n_shards,
        })
    }

    /// The raw `slot → shard` map (index = slot), the encode-side
    /// counterpart of [`RoutingTable::from_parts`].
    pub fn slot_owners(&self) -> &[u32] {
        &self.slots
    }

    /// How many plans have been applied to this table.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of slots (fixed for the table's life).
    pub fn n_slots(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Number of shards the table addresses (including drained shards,
    /// which simply own zero slots).
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// The slot `key` hashes to — stable across migrations.
    pub fn slot_of_key(&self, key: &str) -> u16 {
        (fnv1a_64(key.as_bytes()) % self.slots.len() as u64) as u16
    }

    /// The shard currently owning `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn shard_of_slot(&self, slot: u16) -> u32 {
        self.slots[slot as usize]
    }

    /// The shard currently owning `key`.
    pub fn shard_of_key(&self, key: &str) -> u32 {
        self.shard_of_slot(self.slot_of_key(key))
    }

    /// The slots currently owned by `shard`, ascending.
    pub fn slots_of(&self, shard: u32) -> Vec<u16> {
        (0..self.slots.len() as u16)
            .filter(|s| self.slots[*s as usize] == shard)
            .collect()
    }

    /// The shards that currently own at least one slot, ascending — the
    /// set a whole-object query must be scattered to. A drained shard
    /// owns nothing a gather could observe, so it is (correctly) absent.
    pub fn involved_shards(&self) -> Vec<u32> {
        let set: BTreeSet<u32> = self.slots.iter().copied().collect();
        set.into_iter().collect()
    }

    /// Slots owned per shard (index = shard id).
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.n_shards as usize];
        for shard in &self.slots {
            load[*shard as usize] += 1;
        }
        load
    }

    /// Applies a migration plan, bumping the version.
    ///
    /// # Panics
    ///
    /// Panics if the plan was computed against a different version, or if
    /// a move's `from` shard does not currently own its slot (both
    /// indicate the caller raced two migrations).
    pub fn apply(&mut self, plan: &MigrationPlan) {
        assert_eq!(
            plan.from_version, self.version,
            "migration plan is stale: computed for table v{}, table is at v{}",
            plan.from_version, self.version
        );
        for mv in &plan.moves {
            assert_eq!(
                self.slots[mv.slot as usize], mv.from,
                "slot {} is owned by shard {}, plan expected {}",
                mv.slot, self.slots[mv.slot as usize], mv.from
            );
            self.slots[mv.slot as usize] = mv.to;
        }
        self.n_shards = self.n_shards.max(plan.n_shards_after);
        self.version += 1;
    }
}

/// One slot changing hands in a [`MigrationPlan`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SlotMove {
    /// The slot being relocated.
    pub slot: u16,
    /// Its current owner.
    pub from: u32,
    /// Its owner after the migration.
    pub to: u32,
}

/// The minimal set of slot moves taking a [`RoutingTable`] from one
/// version to the next.
///
/// Plans are *minimal by construction*: adding a shard moves exactly
/// `⌊slots/(S+1)⌋` slots (≈ `1/(S+1)` of the keyspace — compare the
/// naive `hash mod S` scheme, where growing `S` remaps almost every
/// key), and draining a shard moves exactly the slots it owned. Every
/// key outside the moved slots routes identically before and after
/// (checked by property tests in `crates/core/tests/proptests.rs`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MigrationPlan {
    from_version: u64,
    n_shards_after: u32,
    moves: Vec<SlotMove>,
}

impl MigrationPlan {
    /// A plan adding one shard (id = `table.n_shards()`) and rebalancing
    /// by pulling slots from the currently most-loaded shards, lowest
    /// slot first — deterministic, so every component computes the same
    /// plan from the same table.
    pub fn add_shard(table: &RoutingTable) -> Self {
        let new = table.n_shards();
        let n_after = new + 1;
        let target = table.n_slots() as usize / n_after as usize;
        let mut load = table.load();
        let mut taken: BTreeSet<u16> = BTreeSet::new();
        let mut moves = Vec::with_capacity(target);
        for _ in 0..target {
            // Donor: most-loaded shard, ties to the lowest id.
            let donor = (0..load.len())
                .max_by_key(|s| (load[*s], usize::MAX - *s))
                .expect("at least one shard") as u32;
            let slot = (0..table.n_slots())
                .find(|s| table.shard_of_slot(*s) == donor && !taken.contains(s))
                .expect("donor has an unmoved slot");
            taken.insert(slot);
            load[donor as usize] -= 1;
            moves.push(SlotMove {
                slot,
                from: donor,
                to: new,
            });
        }
        MigrationPlan {
            from_version: table.version(),
            n_shards_after: n_after,
            moves,
        }
    }

    /// A plan draining `shard`: every slot it owns moves to the
    /// currently least-loaded other shard (ties to the lowest id). The
    /// drained shard stays addressable (it may still be answering
    /// operations submitted before the drain) but owns no slots, so it
    /// receives no new traffic once the plan is applied.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or is the only shard.
    pub fn drain_shard(table: &RoutingTable, shard: u32) -> Self {
        assert!(shard < table.n_shards(), "shard {shard} out of range");
        let others: Vec<u32> = (0..table.n_shards()).filter(|s| *s != shard).collect();
        assert!(!others.is_empty(), "cannot drain the only shard");
        let mut load = table.load();
        let mut moves = Vec::new();
        for slot in table.slots_of(shard) {
            let to = *others
                .iter()
                .min_by_key(|s| (load[**s as usize], **s))
                .expect("nonempty");
            load[to as usize] += 1;
            moves.push(SlotMove {
                slot,
                from: shard,
                to,
            });
        }
        MigrationPlan {
            from_version: table.version(),
            n_shards_after: table.n_shards(),
            moves,
        }
    }

    /// The table version this plan was computed against.
    pub fn from_version(&self) -> u64 {
        self.from_version
    }

    /// The table version after applying this plan.
    pub fn to_version(&self) -> u64 {
        self.from_version + 1
    }

    /// Number of shards the table addresses after this plan.
    pub fn n_shards_after(&self) -> u32 {
        self.n_shards_after
    }

    /// The slot moves, in execution order.
    pub fn moves(&self) -> &[SlotMove] {
        &self.moves
    }

    /// The set of slots this plan relocates.
    pub fn slots(&self) -> BTreeSet<u16> {
        self.moves.iter().map(|m| m.slot).collect()
    }

    /// Whether the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Partitions the keyspace of a [`KeyedDataType`] across independent
/// replica groups through a versioned [`RoutingTable`].
///
/// Routing is pure and deterministic: `slot = FNV-1a(key) mod`
/// [`SLOT_COUNT`], `shard = table[slot]`. Keyless operators are
/// attributed to [`HOME_SLOT`] and follow its owner. Every component of
/// a sharded deployment constructs an equal router from `n_shards` alone
/// (the uniform table) and advances it by applying the same
/// [`MigrationPlan`]s in the same order.
///
/// # Examples
///
/// ```
/// use esds_core::ShardRouter;
///
/// let r = ShardRouter::new(4);
/// assert_eq!(r.n_shards(), 4);
/// assert_eq!(r.shard_of_key("user:17"), r.shard_of_key("user:17"));
/// assert!(r.shard_of_key("user:17") < 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardRouter {
    table: RoutingTable,
}

impl ShardRouter {
    /// A router over `n_shards` shards (ids `0..n_shards`) with the
    /// initial uniform table.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: u32) -> Self {
        ShardRouter {
            table: RoutingTable::uniform(n_shards),
        }
    }

    /// A router over an explicit table (e.g. one restored mid-history).
    pub fn from_table(table: RoutingTable) -> Self {
        ShardRouter { table }
    }

    /// The underlying routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The table version (how many migrations have been applied).
    pub fn version(&self) -> u64 {
        self.table.version()
    }

    /// Number of shards (including drained, slotless ones).
    pub fn n_shards(&self) -> u32 {
        self.table.n_shards()
    }

    /// The slot `key` hashes to — stable across migrations.
    pub fn slot_of_key(&self, key: &str) -> u16 {
        self.table.slot_of_key(key)
    }

    /// The shard currently owning `key`.
    pub fn shard_of_key(&self, key: &str) -> u32 {
        self.table.shard_of_key(key)
    }

    /// The slot an operator is attributed to: its key's slot, or
    /// [`HOME_SLOT`] for keyless operators.
    pub fn slot_of<T: KeyedDataType>(&self, dt: &T, op: &T::Operator) -> u16 {
        match dt.shard_key(op) {
            Some(k) => self.slot_of_key(k),
            None => HOME_SLOT,
        }
    }

    /// The shard an operator is routed to: its slot's current owner.
    pub fn route<T: KeyedDataType>(&self, dt: &T, op: &T::Operator) -> u32 {
        self.table.shard_of_slot(self.slot_of(dt, op))
    }

    /// Applies a migration plan to the router's table (see
    /// [`RoutingTable::apply`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale (see [`RoutingTable::apply`]).
    pub fn apply(&mut self, plan: &MigrationPlan) {
        self.table.apply(plan);
    }
}

/// Walks a `prev` DAG and collects the **local frontier** for `shard`:
/// the per-shard identifiers of every same-shard operation reachable from
/// `prev` through foreign-shard hops.
///
/// This is the one subtle rule of cross-shard `prev` enforcement, shared
/// by the simulated (`esds-harness`) and threaded (`esds-runtime`)
/// sharded layers: an answered foreign predecessor's *edge* may be
/// dropped (its response precedes the dependent's request), but the
/// transitive ordering it carried may not — in the chain
/// `A (shard s) ← B (foreign) ← C (shard s)`, `C` must still be ordered
/// after `A` within `s`. The walk therefore **descends through** foreign
/// nodes and **stops at** same-shard nodes, whose own submitted `prev`
/// already carries their same-shard transitive closure.
///
/// `node` resolves one global identifier to `(its shard, its local id,
/// its global prev set)`; callers interleave their own side effects there
/// (the runtime layer awaits each foreign predecessor's response inside
/// it). Each node is visited at most once.
///
/// # Examples
///
/// ```
/// use esds_core::shard_frontier;
///
/// // A (shard 0, local "a") ← B (shard 1, local "b") ← C's prev.
/// let node = |g: u8| match g {
///     0 => (0, "a", vec![]),
///     1 => (1, "b", vec![0]),
///     _ => unreachable!(),
/// };
/// // C lands on shard 0: inherits A through the foreign hop B.
/// assert_eq!(shard_frontier(&[1], 0, node), vec!["a"]);
/// // C lands on shard 1: B itself is the frontier.
/// assert_eq!(shard_frontier(&[1], 1, node), vec!["b"]);
/// ```
pub fn shard_frontier<Id, L>(
    prev: &[Id],
    shard: u32,
    mut node: impl FnMut(Id) -> (u32, L, Vec<Id>),
) -> Vec<L>
where
    Id: Ord + Copy,
{
    let mut out = Vec::new();
    let mut visited = std::collections::BTreeSet::new();
    let mut stack: Vec<Id> = prev.to_vec();
    while let Some(g) = stack.pop() {
        if !visited.insert(g) {
            continue;
        }
        let (s, local, prevs) = node(g);
        if s == shard {
            out.push(local);
        } else {
            stack.extend(prevs);
        }
    }
    out
}

/// The multi-placement generalization of [`shard_frontier`] for
/// histories that contain **gathered** operations.
///
/// A gathered whole-object query has one sub-operation on *every*
/// involved shard, so a single `(shard, local id)` placement cannot
/// describe it. Here `node` resolves a global identifier to *all* of its
/// placements plus its global prev set; the walk anchors on a node the
/// moment it holds a placement on `shard` (a dependent of a gathered op
/// orders after that shard's own sub-operation — the cross-shard `prev`
/// rule of the scatter-gather design) and descends through nodes with no
/// same-shard placement. Single-placement nodes make this walk coincide
/// exactly with [`shard_frontier`].
///
/// # Examples
///
/// ```
/// use esds_core::gather_frontier;
///
/// // G is a gathered query placed on shards 0 and 1; K (shard 1)
/// // depends on it.
/// let node = |g: u8| match g {
///     0 => (vec![(0u32, "g@0"), (1, "g@1")], vec![]),
///     _ => unreachable!(),
/// };
/// // K lands on shard 1: anchors on G's shard-1 sub-operation.
/// assert_eq!(gather_frontier(&[0], 1, node), vec!["g@1"]);
/// // A dependent on shard 2 sees no same-shard placement and G has no
/// // predecessors: empty frontier.
/// assert_eq!(gather_frontier(&[0], 2, node), Vec::<&str>::new());
/// ```
pub fn gather_frontier<Id, L>(
    prev: &[Id],
    shard: u32,
    mut node: impl FnMut(Id) -> (Vec<(u32, L)>, Vec<Id>),
) -> Vec<L>
where
    Id: Ord + Copy,
{
    let mut out = Vec::new();
    let mut visited = std::collections::BTreeSet::new();
    let mut stack: Vec<Id> = prev.to_vec();
    while let Some(g) = stack.pop() {
        if !visited.insert(g) {
            continue;
        }
        let (placements, prevs) = node(g);
        let mut local = None;
        for (s, l) in placements {
            if s == shard {
                local = Some(l);
                break;
            }
        }
        match local {
            Some(l) => out.push(l),
            None => stack.extend(prevs),
        }
    }
    out
}

/// An operation identifier in the **global** namespace of a sharded
/// service.
///
/// Each shard is an unmodified ESDS instance with its own per-group
/// [`OpId`](crate::OpId) space (per-client sequence numbers restart in every shard), so
/// a global handle is needed to name operations across shards — in `prev`
/// sets spanning shards, and when looking responses up. Like [`OpId`](crate::OpId), the
/// pair (client, global sequence) is unique as long as each client numbers
/// its sharded submissions consecutively, which the sharded layers
/// enforce.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, ShardedOpId};
/// let g = ShardedOpId::new(ClientId(2), 7);
/// assert_eq!(g.client(), ClientId(2));
/// assert_eq!(g.to_string(), "c2/7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardedOpId {
    client: ClientId,
    seq: u64,
}

impl ShardedOpId {
    /// The `seq`-th sharded submission of `client`.
    pub fn new(client: ClientId, seq: u64) -> Self {
        ShardedOpId { client, seq }
    }

    /// The issuing client.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The client's global submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl fmt::Display for ShardedOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.client, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(5);
        for k in ["", "a", "k1", "k2", "user:999", "漢字"] {
            let s = r.shard_of_key(k);
            assert!(s < 5);
            assert_eq!(s, r.shard_of_key(k), "routing must be deterministic");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        assert_eq!(r.shard_of_key("anything"), 0);
    }

    #[test]
    fn many_keys_spread_over_shards() {
        let r = ShardRouter::new(8);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            seen.insert(r.shard_of_key(&format!("k{i}")));
        }
        assert_eq!(seen.len(), 8, "256 keys must hit all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn uniform_table_balances_slots() {
        let t = RoutingTable::uniform(4);
        assert_eq!(t.n_slots(), SLOT_COUNT);
        let load = t.load();
        assert_eq!(load.iter().sum::<usize>(), SLOT_COUNT as usize);
        assert!(load.iter().all(|l| *l == SLOT_COUNT as usize / 4));
        assert_eq!(t.shard_of_slot(HOME_SLOT), HOME_SHARD);
    }

    #[test]
    fn add_shard_moves_one_over_s_plus_one_of_the_slots() {
        for s in 1u32..9 {
            let t = RoutingTable::uniform(s);
            let plan = MigrationPlan::add_shard(&t);
            assert_eq!(plan.moves().len(), SLOT_COUNT as usize / (s + 1) as usize);
            assert!(plan.moves().iter().all(|m| m.to == s));
            let mut t2 = t.clone();
            t2.apply(&plan);
            assert_eq!(t2.n_shards(), s + 1);
            assert_eq!(t2.version(), 1);
            // Post-migration balance: slots per shard within 1 of each other.
            let load = t2.load();
            let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced after add: {load:?}");
        }
    }

    #[test]
    fn drain_shard_empties_it_and_keeps_balance() {
        let mut t = RoutingTable::uniform(4);
        let plan = MigrationPlan::drain_shard(&t, 2);
        assert_eq!(plan.moves().len(), SLOT_COUNT as usize / 4);
        t.apply(&plan);
        assert_eq!(t.slots_of(2), Vec::<u16>::new());
        assert_eq!(t.n_shards(), 4, "a drained shard stays addressable");
        let load = t.load();
        assert_eq!(load[2], 0);
        let live: Vec<usize> = [0usize, 1, 3].iter().map(|s| load[*s]).collect();
        let (min, max) = (live.iter().min().unwrap(), live.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced after drain: {load:?}");
    }

    #[test]
    fn unmoved_slots_route_identically() {
        let t = RoutingTable::uniform(3);
        let plan = MigrationPlan::add_shard(&t);
        let mut t2 = t.clone();
        t2.apply(&plan);
        let moved = plan.slots();
        for i in 0..500 {
            let k = format!("key:{i}");
            if moved.contains(&t.slot_of_key(&k)) {
                assert_eq!(t2.shard_of_key(&k), 3, "moved keys go to the new shard");
            } else {
                assert_eq!(t.shard_of_key(&k), t2.shard_of_key(&k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_plan_rejected() {
        let mut t = RoutingTable::uniform(2);
        let plan = MigrationPlan::add_shard(&t);
        t.apply(&plan);
        let replay = plan.clone();
        t.apply(&replay); // computed for v0, table now at v1
    }

    #[test]
    fn router_follows_applied_plans() {
        let mut r = ShardRouter::new(2);
        assert_eq!(r.version(), 0);
        let plan = MigrationPlan::add_shard(r.table());
        r.apply(&plan);
        assert_eq!(r.version(), 1);
        assert_eq!(r.n_shards(), 3);
        // Some key must now live on the new shard.
        assert!(
            (0..SLOT_COUNT).any(|s| r.table().shard_of_slot(s) == 2),
            "new shard owns no slots"
        );
    }

    #[test]
    fn frontier_descends_foreign_and_stops_at_local() {
        // Diamond: D's prev = {B, C}; B and C are foreign hops both
        // leading to local A. A must appear exactly once.
        let node = |g: u8| match g {
            0 => (0u32, 'a', vec![]),
            1 => (1, 'b', vec![0]),
            2 => (2, 'c', vec![0]),
            _ => unreachable!(),
        };
        assert_eq!(shard_frontier(&[1, 2], 0, node), vec!['a']);
        // From shard 1's viewpoint: B is local, C is descended through.
        let mut f = shard_frontier(&[1, 2], 1, node);
        f.sort();
        assert_eq!(f, vec!['b']);
        // No predecessors at all: empty frontier.
        assert_eq!(shard_frontier::<u8, char>(&[], 0, node), Vec::<char>::new());
    }

    #[test]
    fn involved_shards_tracks_ownership() {
        let mut t = RoutingTable::uniform(3);
        assert_eq!(t.involved_shards(), vec![0, 1, 2]);
        t.apply(&MigrationPlan::drain_shard(&t, 1));
        assert_eq!(
            t.involved_shards(),
            vec![0, 2],
            "a drained shard owns no slots and must not be scattered to"
        );
        t.apply(&MigrationPlan::add_shard(&t));
        assert_eq!(t.involved_shards(), vec![0, 2, 3]);
    }

    #[test]
    fn gather_frontier_anchors_on_same_shard_placement() {
        // G gathered over shards {0,1}, with a foreign single-placement
        // predecessor P on shard 2; D depends on G.
        let node = |g: u8| match g {
            0 => (vec![(2u32, "p@2")], vec![]),
            1 => (vec![(0, "g@0"), (1, "g@1")], vec![0]),
            _ => unreachable!(),
        };
        // D on shard 0 or 1: the gathered op's own sub-op is the anchor.
        assert_eq!(gather_frontier(&[1], 0, node), vec!["g@0"]);
        assert_eq!(gather_frontier(&[1], 1, node), vec!["g@1"]);
        // D on shard 2: descends through G to reach P.
        assert_eq!(gather_frontier(&[1], 2, node), vec!["p@2"]);
        // D on shard 3: nothing placed there anywhere in the closure.
        assert_eq!(gather_frontier(&[1], 3, node), Vec::<&str>::new());
    }

    #[test]
    fn gather_frontier_coincides_with_shard_frontier_on_single_placements() {
        let single = |g: u8| match g {
            0 => (0u32, 'a', vec![]),
            1 => (1, 'b', vec![0]),
            2 => (2, 'c', vec![0]),
            _ => unreachable!(),
        };
        let multi = |g: u8| {
            let (s, l, p) = single(g);
            (vec![(s, l)], p)
        };
        for shard in 0..4 {
            let mut a = shard_frontier(&[1, 2], shard, single);
            let mut b = gather_frontier(&[1, 2], shard, multi);
            a.sort();
            b.sort();
            assert_eq!(a, b, "shard {shard}");
        }
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut t = RoutingTable::uniform(3);
        t.apply(&MigrationPlan::add_shard(&t));
        let back =
            RoutingTable::from_parts(t.version(), t.n_shards(), t.slot_owners().to_vec()).unwrap();
        assert_eq!(back, t);
        assert!(RoutingTable::from_parts(0, 0, vec![0]).is_err());
        assert!(RoutingTable::from_parts(0, 2, vec![]).is_err());
        assert!(RoutingTable::from_parts(0, 2, vec![0; SLOT_COUNT as usize + 1]).is_err());
        assert!(RoutingTable::from_parts(0, 2, vec![0, 2]).is_err());
    }

    #[test]
    fn sharded_id_display_and_accessors() {
        let g = ShardedOpId::new(ClientId(3), 11);
        assert_eq!(g.client(), ClientId(3));
        assert_eq!(g.seq(), 11);
        assert_eq!(g.to_string(), "c3/11");
        assert!(g < ShardedOpId::new(ClientId(3), 12));
    }
}

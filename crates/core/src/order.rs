//! Binary relations and (strict) partial orders over operation identifiers
//! (paper §2.1).
//!
//! The paper manipulates relations `R ⊆ ℐ × ℐ` and their transitive closures
//! `TC(R)`, asking whether `TC(R)` is a (strict) partial order, whether two
//! relations are *consistent* (`TC(R ∪ R′)` is a partial order), and for
//! total orders on subsets. [`Digraph`] represents a relation by its
//! generating edges; `precedes` answers reachability, i.e. membership in the
//! transitive closure, so that:
//!
//! * `TC(R)` is irreflexive (hence a strict partial order, Lemma 2.1) iff the
//!   digraph is acyclic;
//! * the relation induced by `TC(R)` on a subset `S` is computed by
//!   [`Digraph::induced_on`];
//! * total orders are topological sorts ([`Digraph::topo_sort`],
//!   [`Digraph::linear_extensions`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;

/// A finite binary relation represented as a directed graph: an edge
/// `a → b` means `(a, b) ∈ R`, read "`a` precedes `b`".
///
/// The *relation of interest* is usually the transitive closure of the
/// stored edges; [`Digraph::precedes`] and friends are all defined on the
/// closure. Nodes may exist without edges (operations not yet ordered).
///
/// # Examples
///
/// ```
/// use esds_core::Digraph;
/// let mut g = Digraph::new();
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert!(g.precedes(&1, &3)); // via transitivity
/// assert!(g.is_strict_partial_order());
/// assert_eq!(g.topo_sort(), Some(vec![1, 2, 3]));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Digraph<N: Ord + Copy> {
    succ: BTreeMap<N, BTreeSet<N>>,
    pred: BTreeMap<N, BTreeSet<N>>,
    nodes: BTreeSet<N>,
}

impl<N: Ord + Copy + Debug> Digraph<N> {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Digraph {
            succ: BTreeMap::new(),
            pred: BTreeMap::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// Builds a relation from `(before, after)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (N, N)>) -> Self {
        let mut g = Self::new();
        for (a, b) in pairs {
            g.add_edge(a, b);
        }
        g
    }

    /// Builds the total order `items[0] ≺ items[1] ≺ …` (chain edges only;
    /// the closure supplies the rest).
    pub fn chain(items: impl IntoIterator<Item = N>) -> Self {
        let mut g = Self::new();
        let mut prev: Option<N> = None;
        for n in items {
            g.add_node(n);
            if let Some(p) = prev {
                g.add_edge(p, n);
            }
            prev = Some(n);
        }
        g
    }

    /// Adds a node with no constraints (idempotent).
    pub fn add_node(&mut self, n: N) {
        self.nodes.insert(n);
    }

    /// Adds the pair `(a, b)` — "a precedes b" — to the relation
    /// (idempotent). Also registers both nodes.
    pub fn add_edge(&mut self, a: N, b: N) {
        self.nodes.insert(a);
        self.nodes.insert(b);
        self.succ.entry(a).or_default().insert(b);
        self.pred.entry(b).or_default().insert(a);
    }

    /// Whether the pair `(a, b)` is a *generating* edge (not closure
    /// membership; see [`Digraph::precedes`] for that).
    pub fn has_edge(&self, a: &N, b: &N) -> bool {
        self.succ.get(a).is_some_and(|s| s.contains(b))
    }

    /// All nodes mentioned by the relation.
    pub fn nodes(&self) -> &BTreeSet<N> {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the relation mentions no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of generating edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(|s| s.len()).sum()
    }

    /// Iterates over generating edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (N, N)> + '_ {
        self.succ
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |b| (*a, *b)))
    }

    /// The *span* of the relation (paper §2.1): all nodes appearing on
    /// either side of some pair.
    pub fn span(&self) -> BTreeSet<N> {
        let mut s: BTreeSet<N> = self.succ.keys().copied().collect();
        s.extend(self.pred.keys().copied());
        s
    }

    /// Whether `a` strictly precedes `b` in the transitive closure
    /// (a nonempty path from `a` to `b` exists).
    pub fn precedes(&self, a: &N, b: &N) -> bool {
        if !self.nodes.contains(a) || !self.nodes.contains(b) {
            return false;
        }
        let mut seen = BTreeSet::new();
        let mut stack: Vec<N> = self
            .succ
            .get(a)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(n) = stack.pop() {
            if n == *b {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = self.succ.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Whether `a` and `b` are comparable in the closure (or equal).
    pub fn comparable(&self, a: &N, b: &N) -> bool {
        a == b || self.precedes(a, b) || self.precedes(b, a)
    }

    /// All nodes reachable from `n` (its strict successors in the closure).
    pub fn descendants(&self, n: &N) -> BTreeSet<N> {
        self.reach(n, &self.succ)
    }

    /// All nodes that reach `n`: the set `S|≺n = {y : y ≺ n}` of the paper.
    pub fn ancestors(&self, n: &N) -> BTreeSet<N> {
        self.reach(n, &self.pred)
    }

    fn reach(&self, n: &N, adj: &BTreeMap<N, BTreeSet<N>>) -> BTreeSet<N> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<N> = adj
            .get(n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                if let Some(next) = adj.get(&m) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        seen
    }

    /// Whether the closure contains a cycle (equivalently: `TC(R)` is *not*
    /// irreflexive, so no strict partial order contains `R`).
    pub fn has_cycle(&self) -> bool {
        self.topo_sort().is_none()
    }

    /// Whether `TC(R)` is a strict partial order (Lemma 2.1: irreflexive and
    /// transitive). Since the closure is transitive by construction, this is
    /// exactly acyclicity.
    pub fn is_strict_partial_order(&self) -> bool {
        !self.has_cycle()
    }

    /// Whether this relation and `other` are *consistent* (paper §2.1):
    /// `TC(R ∪ R′)` is a partial order, i.e. the union is acyclic.
    pub fn consistent_with(&self, other: &Digraph<N>) -> bool {
        let mut union = self.clone();
        for (a, b) in other.edges() {
            union.add_edge(a, b);
        }
        for n in other.nodes() {
            union.add_node(*n);
        }
        !union.has_cycle()
    }

    /// Whether this relation contains every pair of `other` *in its
    /// closure*: `TC(other) ⊆ TC(self)`. Used for `po ⊆ new-po` checks.
    pub fn contains_relation(&self, other: &Digraph<N>) -> bool {
        other.edges().all(|(a, b)| self.precedes(&a, &b))
    }

    /// The explicit transitive closure as a new digraph (every closure pair
    /// becomes a generating edge). O(V·E); intended for checker-sized inputs.
    pub fn transitive_closure(&self) -> Digraph<N> {
        let mut out = Self::new();
        for n in &self.nodes {
            out.add_node(*n);
            for d in self.descendants(n) {
                out.add_edge(*n, d);
            }
        }
        out
    }

    /// The relation induced by `TC(R)` on `keep`: pairs `(a, b) ∈ keep²`
    /// with a path from `a` to `b` (possibly through dropped nodes).
    pub fn induced_on(&self, keep: &BTreeSet<N>) -> Digraph<N> {
        let mut out = Self::new();
        for n in keep {
            if self.nodes.contains(n) {
                out.add_node(*n);
                for d in self.descendants(n) {
                    if keep.contains(&d) {
                        out.add_edge(*n, d);
                    }
                }
            }
        }
        out
    }

    /// Whether the closure totally orders `set`: all pairs comparable.
    pub fn is_total_on(&self, set: &BTreeSet<N>) -> bool {
        let v: Vec<&N> = set.iter().collect();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                if !self.comparable(v[i], v[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// A deterministic topological sort (`None` if cyclic): Kahn's algorithm
    /// always choosing the smallest available node, so equal inputs yield
    /// equal outputs.
    pub fn topo_sort(&self) -> Option<Vec<N>> {
        let mut indeg: BTreeMap<N, usize> = self.nodes.iter().map(|n| (*n, 0)).collect();
        for (_, b) in self.edges() {
            *indeg.get_mut(&b).expect("edge endpoint registered") += 1;
        }
        let mut ready: BTreeSet<N> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.iter().next().copied() {
            ready.remove(&n);
            out.push(n);
            if let Some(next) = self.succ.get(&n) {
                for m in next {
                    let d = indeg.get_mut(m).expect("registered");
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(*m);
                    }
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }

    /// All linear extensions (total orders consistent with the closure), up
    /// to `cap` many. Exponential in general — intended for checker-sized
    /// inputs (the `valset` of paper §2.3 quantifies over exactly these).
    ///
    /// Returns an empty vector iff the relation is cyclic (Lemma 2.5: a
    /// partial order always has at least one extension).
    pub fn linear_extensions(&self, cap: usize) -> Vec<Vec<N>> {
        let mut indeg: BTreeMap<N, usize> = self.nodes.iter().map(|n| (*n, 0)).collect();
        for (_, b) in self.edges() {
            *indeg.get_mut(&b).expect("registered") += 1;
        }
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(self.nodes.len());
        self.extend_rec(&mut indeg, &mut prefix, &mut out, cap);
        out
    }

    fn extend_rec(
        &self,
        indeg: &mut BTreeMap<N, usize>,
        prefix: &mut Vec<N>,
        out: &mut Vec<Vec<N>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if prefix.len() == self.nodes.len() {
            out.push(prefix.clone());
            return;
        }
        let ready: Vec<N> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        for n in ready {
            // Choose n next.
            indeg.remove(&n);
            prefix.push(n);
            if let Some(next) = self.succ.get(&n) {
                for m in next {
                    *indeg.get_mut(m).expect("registered") -= 1;
                }
            }
            self.extend_rec(indeg, prefix, out, cap);
            // Undo.
            prefix.pop();
            if let Some(next) = self.succ.get(&n) {
                for m in next {
                    *indeg.get_mut(m).expect("registered") += 1;
                }
            }
            indeg.insert(n, 0);
            if out.len() >= cap {
                return;
            }
        }
    }

    /// Minimal nodes of the closure (no predecessors).
    pub fn minimal(&self) -> BTreeSet<N> {
        self.nodes
            .iter()
            .filter(|n| self.pred.get(n).is_none_or(|p| p.is_empty()))
            .copied()
            .collect()
    }

    /// Removes a set of nodes and all edges touching them. Used by memory
    /// compaction (paper §10.2).
    pub fn remove_nodes(&mut self, drop: &BTreeSet<N>) {
        for n in drop {
            self.nodes.remove(n);
            if let Some(next) = self.succ.remove(n) {
                for m in next {
                    if let Some(p) = self.pred.get_mut(&m) {
                        p.remove(n);
                    }
                }
            }
            if let Some(prevs) = self.pred.remove(n) {
                for m in prevs {
                    if let Some(s) = self.succ.get_mut(&m) {
                        s.remove(n);
                    }
                }
            }
        }
    }

    /// Breadth-first distances from `n` along successor edges; handy for
    /// diagnostics and tests.
    pub fn bfs_depths(&self, n: &N) -> BTreeMap<N, usize> {
        let mut depth = BTreeMap::new();
        let mut q = VecDeque::new();
        depth.insert(*n, 0usize);
        q.push_back(*n);
        while let Some(m) = q.pop_front() {
            let d = depth[&m];
            if let Some(next) = self.succ.get(&m) {
                for s in next {
                    if !depth.contains_key(s) {
                        depth.insert(*s, d + 1);
                        q.push_back(*s);
                    }
                }
            }
        }
        depth
    }
}

/// Checks Lemma 2.3 concretely: a total order `total` on a set and a partial
/// order `partial` are consistent iff whenever `x ≺_partial y` and `y ≤_total
/// x`, then `x = y`. Exposed for checker reuse and tested against
/// [`Digraph::consistent_with`].
pub fn total_order_consistent<N: Ord + Copy + Debug>(total: &[N], partial: &Digraph<N>) -> bool {
    let position: BTreeMap<N, usize> = total.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    for (a, b) in partial.transitive_closure().edges() {
        if let (Some(pa), Some(pb)) = (position.get(&a), position.get(&b)) {
            if pa >= pb {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedes_is_transitive() {
        let g = Digraph::from_pairs([(1, 2), (2, 3), (3, 4)]);
        assert!(g.precedes(&1, &4));
        assert!(!g.precedes(&4, &1));
        assert!(!g.precedes(&1, &1));
    }

    #[test]
    fn cycle_detection() {
        let mut g = Digraph::from_pairs([(1, 2), (2, 3)]);
        assert!(g.is_strict_partial_order());
        g.add_edge(3, 1);
        assert!(g.has_cycle());
        assert!(!g.is_strict_partial_order());
        assert_eq!(g.topo_sort(), None);
        assert!(g.linear_extensions(10).is_empty());
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g = Digraph::new();
        g.add_edge(1, 1);
        assert!(g.has_cycle());
    }

    #[test]
    fn topo_sort_deterministic_smallest_first() {
        let mut g = Digraph::new();
        g.add_node(3);
        g.add_node(1);
        g.add_node(2);
        assert_eq!(g.topo_sort(), Some(vec![1, 2, 3]));
        g.add_edge(3, 1);
        assert_eq!(g.topo_sort(), Some(vec![2, 3, 1]));
    }

    #[test]
    fn linear_extensions_of_antichain() {
        let mut g = Digraph::new();
        g.add_node(1);
        g.add_node(2);
        g.add_node(3);
        let exts = g.linear_extensions(100);
        assert_eq!(exts.len(), 6); // 3! orders
                                   // All are permutations.
        for e in &exts {
            let s: BTreeSet<_> = e.iter().copied().collect();
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn linear_extensions_respects_cap() {
        let mut g = Digraph::new();
        for n in 0..6 {
            g.add_node(n);
        }
        let exts = g.linear_extensions(10);
        assert_eq!(exts.len(), 10);
    }

    #[test]
    fn linear_extensions_nonempty_for_partial_order_lemma_2_5() {
        let g = Digraph::from_pairs([(1, 2), (1, 3)]);
        let exts = g.linear_extensions(100);
        assert_eq!(exts.len(), 2);
        assert!(exts.contains(&vec![1, 2, 3]));
        assert!(exts.contains(&vec![1, 3, 2]));
    }

    #[test]
    fn consistency_lemma_2_3_agreement() {
        // total: 1,2,3 ; partial: 3 ≺ 2 → inconsistent
        let total = vec![1, 2, 3];
        let bad = Digraph::from_pairs([(3, 2)]);
        assert!(!total_order_consistent(&total, &bad));
        let good = Digraph::from_pairs([(1, 3)]);
        assert!(total_order_consistent(&total, &good));

        // Cross-check with consistent_with on the chain digraph.
        let chain = Digraph::chain(total.clone());
        assert!(!chain.consistent_with(&bad));
        assert!(chain.consistent_with(&good));
    }

    #[test]
    fn induced_relation_keeps_paths_through_dropped_nodes() {
        // 1 → 2 → 3 with 2 dropped: induced on {1,3} still has 1 ≺ 3
        // (Lemma 2.2: induced relation of a partial order is a partial order).
        let g = Digraph::from_pairs([(1, 2), (2, 3)]);
        let keep: BTreeSet<_> = [1, 3].into_iter().collect();
        let ind = g.induced_on(&keep);
        assert!(ind.precedes(&1, &3));
        assert!(ind.is_strict_partial_order());
        assert_eq!(ind.nodes().len(), 2);
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = Digraph::from_pairs([(1, 2), (2, 3), (4, 3)]);
        assert_eq!(g.ancestors(&3), [1, 2, 4].into_iter().collect());
        assert_eq!(g.descendants(&1), [2, 3].into_iter().collect());
        assert!(g.ancestors(&1).is_empty());
    }

    #[test]
    fn total_on_set() {
        let g = Digraph::from_pairs([(1, 2), (2, 3)]);
        let all: BTreeSet<_> = [1, 2, 3].into_iter().collect();
        assert!(g.is_total_on(&all));
        let mut g2 = g.clone();
        g2.add_node(4);
        let with4: BTreeSet<_> = [1, 2, 3, 4].into_iter().collect();
        assert!(!g2.is_total_on(&with4));
    }

    #[test]
    fn transitive_closure_explicit() {
        let g = Digraph::from_pairs([(1, 2), (2, 3)]);
        let tc = g.transitive_closure();
        assert!(tc.has_edge(&1, &3));
        assert_eq!(tc.edge_count(), 3);
    }

    #[test]
    fn contains_relation_uses_closure() {
        let big = Digraph::from_pairs([(1, 2), (2, 3)]);
        let small = Digraph::from_pairs([(1, 3)]);
        assert!(big.contains_relation(&small));
        assert!(!small.contains_relation(&big));
    }

    #[test]
    fn remove_nodes_cleans_edges() {
        let mut g = Digraph::from_pairs([(1, 2), (2, 3)]);
        g.remove_nodes(&[2].into_iter().collect());
        assert!(!g.precedes(&1, &3)); // path through 2 is gone
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn minimal_elements() {
        let g = Digraph::from_pairs([(1, 3), (2, 3)]);
        assert_eq!(g.minimal(), [1, 2].into_iter().collect());
    }

    #[test]
    fn span_excludes_isolated_nodes() {
        let mut g = Digraph::from_pairs([(1, 2)]);
        g.add_node(9);
        assert_eq!(g.span(), [1, 2].into_iter().collect());
        assert!(g.nodes().contains(&9));
    }

    #[test]
    fn bfs_depths_levels() {
        let g = Digraph::from_pairs([(1, 2), (2, 3), (1, 3)]);
        let d = g.bfs_depths(&1);
        assert_eq!(d[&1], 0);
        assert_eq!(d[&2], 1);
        assert_eq!(d[&3], 1); // direct edge wins
    }
}

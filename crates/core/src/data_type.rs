//! Serial data types (paper §2.2).
//!
//! A *serial data type* consists of a set Σ of object states, a
//! distinguished initial state σ₀, a set V of reportable values, a set O of
//! operators, and a transition function τ : Σ × O → Σ × V. The data service
//! is parameterized by such a type and makes **no assumptions about its
//! semantics** — any implementation of [`SerialDataType`] works.

use std::fmt::Debug;

use crate::op::OpDescriptor;

/// A serial data type: the tuple (Σ, σ₀, V, O, τ) of paper §2.2.
///
/// Implementors are typically zero-sized marker types (e.g. a counter), but
/// the trait takes `&self` so parameterized types (e.g. a bounded log) work
/// too.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
///
/// /// A saturating 8-bit counter.
/// struct Nibble;
/// #[derive(Clone, PartialEq, Eq, Debug)]
/// enum NibbleOp { Inc, Get }
///
/// impl SerialDataType for Nibble {
///     type State = u8;
///     type Operator = NibbleOp;
///     type Value = u8;
///     fn initial_state(&self) -> u8 { 0 }
///     fn apply(&self, s: &u8, op: &NibbleOp) -> (u8, u8) {
///         match op {
///             NibbleOp::Inc => (s.saturating_add(1), s.saturating_add(1)),
///             NibbleOp::Get => (*s, *s),
///         }
///     }
/// }
///
/// let d = Nibble;
/// let (s, v) = d.apply(&d.initial_state(), &NibbleOp::Inc);
/// assert_eq!((s, v), (1, 1));
/// ```
pub trait SerialDataType {
    /// Object states Σ.
    type State: Clone + PartialEq + Debug;
    /// Operators O.
    type Operator: Clone + PartialEq + Debug;
    /// Reportable values V.
    type Value: Clone + PartialEq + Debug;

    /// The initial state σ₀.
    fn initial_state(&self) -> Self::State;

    /// The transition function τ(σ, op) = (τ(σ,op).s, τ(σ,op).v).
    fn apply(&self, state: &Self::State, op: &Self::Operator) -> (Self::State, Self::Value);

    /// τ⁺ restricted to its state component: the state after applying a
    /// sequence of operators in order (paper §2.2's repeated application).
    fn outcome_of_ops<'a>(
        &self,
        from: &Self::State,
        ops: impl IntoIterator<Item = &'a Self::Operator>,
    ) -> Self::State
    where
        Self::Operator: 'a,
    {
        let mut s = from.clone();
        for op in ops {
            s = self.apply(&s, op).0;
        }
        s
    }

    /// Applies a sequence of descriptors in order, returning the final state
    /// and every intermediate return value (one per descriptor, in order).
    /// This is the workhorse for computing responses along a witness total
    /// order.
    fn run<'a>(
        &self,
        from: &Self::State,
        ops: impl IntoIterator<Item = &'a OpDescriptor<Self::Operator>>,
    ) -> (Self::State, Vec<Self::Value>)
    where
        Self::Operator: 'a,
    {
        let mut s = from.clone();
        let mut vals = Vec::new();
        for d in ops {
            let (ns, v) = self.apply(&s, &d.op);
            s = ns;
            vals.push(v);
        }
        (s, vals)
    }
}

/// Dynamic commutativity interface (paper §10.3).
///
/// Two operators *commute* when applying them in either order yields the
/// same state; `a` is *oblivious to* `b` when prepending `b` does not change
/// `a`'s return value; two operators are *independent* when they commute and
/// are mutually oblivious.
///
/// Implementations should be **sound**: returning `true` must be justified
/// for every state. Returning `false` conservatively is always allowed.
/// `esds-datatypes` validates its implementations against brute force on
/// random states.
pub trait CommutativitySpec: SerialDataType {
    /// Whether `τ⁺(σ,(a,b)).s = τ⁺(σ,(b,a)).s` for all σ.
    fn commutes(&self, a: &Self::Operator, b: &Self::Operator) -> bool;

    /// Whether `τ⁺(σ,(b,a)).v = τ(σ,a).v` for all σ — i.e. `a`'s return
    /// value is unaffected by `b` being applied first.
    fn oblivious_to(&self, a: &Self::Operator, b: &Self::Operator) -> bool;

    /// Whether `a` and `b` commute and are mutually oblivious (paper §10.3).
    fn independent(&self, a: &Self::Operator, b: &Self::Operator) -> bool {
        self.commutes(a, b) && self.oblivious_to(a, b) && self.oblivious_to(b, a)
    }
}

/// Brute-force commutativity check on a specific state: used by tests to
/// validate [`CommutativitySpec`] implementations (the spec must imply this
/// for every state).
pub fn commutes_at<T: SerialDataType>(
    dt: &T,
    state: &T::State,
    a: &T::Operator,
    b: &T::Operator,
) -> bool {
    let ab = dt.outcome_of_ops(state, [a, b]);
    let ba = dt.outcome_of_ops(state, [b, a]);
    ab == ba
}

/// Brute-force obliviousness check on a specific state: whether `a`'s value
/// is the same with and without `b` applied first.
pub fn oblivious_at<T: SerialDataType>(
    dt: &T,
    state: &T::State,
    a: &T::Operator,
    b: &T::Operator,
) -> bool {
    let direct = dt.apply(state, a).1;
    let after_b = {
        let s1 = dt.apply(state, b).0;
        dt.apply(&s1, a).1
    };
    direct == after_b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Integer register with read/write — the canonical non-commuting type.
    struct Reg;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum RegOp {
        Write(i64),
        Read,
    }
    impl SerialDataType for Reg {
        type State = i64;
        type Operator = RegOp;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &RegOp) -> (i64, i64) {
            match op {
                RegOp::Write(v) => (*v, *v),
                RegOp::Read => (*s, *s),
            }
        }
    }

    #[test]
    fn outcome_applies_in_order() {
        let d = Reg;
        let s = d.outcome_of_ops(&0, [&RegOp::Write(3), &RegOp::Write(7)]);
        assert_eq!(s, 7);
    }

    #[test]
    fn brute_force_commute_detects_conflict() {
        let d = Reg;
        assert!(!commutes_at(&d, &0, &RegOp::Write(1), &RegOp::Write(2)));
        assert!(commutes_at(&d, &0, &RegOp::Read, &RegOp::Read));
        // Write(5) twice commutes with itself.
        assert!(commutes_at(&d, &0, &RegOp::Write(5), &RegOp::Write(5)));
    }

    #[test]
    fn brute_force_oblivious() {
        let d = Reg;
        // A read is not oblivious to a write.
        assert!(!oblivious_at(&d, &0, &RegOp::Read, &RegOp::Write(9)));
        // A write's value is its argument: oblivious to anything.
        assert!(oblivious_at(&d, &0, &RegOp::Write(4), &RegOp::Write(9)));
    }

    #[test]
    fn increment_double_example_from_paper_10_3() {
        // Paper §10.3: from state 1, inc-then-double gives 4 but
        // double-then-inc gives 3.
        struct C;
        #[derive(Clone, PartialEq, Eq, Debug)]
        enum COp {
            Inc,
            Double,
        }
        impl SerialDataType for C {
            type State = i64;
            type Operator = COp;
            type Value = i64;
            fn initial_state(&self) -> i64 {
                1
            }
            fn apply(&self, s: &i64, op: &COp) -> (i64, i64) {
                match op {
                    COp::Inc => (s + 1, s + 1),
                    COp::Double => (s * 2, s * 2),
                }
            }
        }
        let d = C;
        assert_eq!(d.outcome_of_ops(&1, [&COp::Inc, &COp::Double]), 4);
        assert_eq!(d.outcome_of_ops(&1, [&COp::Double, &COp::Inc]), 3);
        assert!(!commutes_at(&d, &1, &COp::Inc, &COp::Double));
    }
}

//! Outcomes, values, and value sets of operation sets under orders
//! (paper §2.3).
//!
//! Given a finite set `X` of operations and a *total* order on it, the
//! *outcome* is the state after applying all operators in that order, and the
//! *value* of `x ∈ X` is the value returned by `x` in that application. Given
//! a *partial* order `≺`, `valset(x, X, ≺)` is the set of values of `x` over
//! all total orders consistent with `≺` — the set of legal responses.
//!
//! `valset` is exponential in `|X|` in the worst case; it exists for
//! checkers, tests, and the specification automata, all of which operate on
//! small windows. The algorithm itself (crate `esds-alg`) always computes
//! values along a concrete total order (the local label order), which is
//! linear.

use std::collections::{BTreeMap, BTreeSet};

use crate::data_type::SerialDataType;
use crate::ids::OpId;
use crate::op::OpDescriptor;
use crate::order::Digraph;

/// The outcome (final state) of applying descriptors in the given total
/// order, starting from `from` (paper: `outcome_σ(X, ≺)`).
pub fn outcome<'a, T: SerialDataType>(
    dt: &T,
    from: &T::State,
    order: impl IntoIterator<Item = &'a OpDescriptor<T::Operator>>,
) -> T::State
where
    T::Operator: 'a,
{
    let mut s = from.clone();
    for d in order {
        s = dt.apply(&s, &d.op).0;
    }
    s
}

/// The value of the operation with identifier `x` when the descriptors are
/// applied in the given total order (paper: `val_σ(x, X, ≺)`).
///
/// Returns `None` if `x` does not appear in the order. Operations after `x`
/// do not affect `x`'s value, so only the prefix up to `x` is applied.
pub fn value_along<'a, T: SerialDataType>(
    dt: &T,
    from: &T::State,
    order: impl IntoIterator<Item = &'a OpDescriptor<T::Operator>>,
    x: OpId,
) -> Option<T::Value>
where
    T::Operator: 'a,
{
    let mut s = from.clone();
    for d in order {
        let (ns, v) = dt.apply(&s, &d.op);
        if d.id == x {
            return Some(v);
        }
        s = ns;
    }
    None
}

/// Applies descriptors in the given total order and returns the value of
/// *every* operation, keyed by id, together with the final state. Used by
/// checkers that validate many responses against one witness order
/// (Theorem 5.8's eventual total order).
pub fn values_along<'a, T: SerialDataType>(
    dt: &T,
    from: &T::State,
    order: impl IntoIterator<Item = &'a OpDescriptor<T::Operator>>,
) -> (T::State, BTreeMap<OpId, T::Value>)
where
    T::Operator: 'a,
{
    let mut s = from.clone();
    let mut vals = BTreeMap::new();
    for d in order {
        let (ns, v) = dt.apply(&s, &d.op);
        vals.insert(d.id, v);
        s = ns;
    }
    (s, vals)
}

/// The set of values `valset_σ(x, X, ≺)` of `x` over all total orders on `X`
/// consistent with the partial order `po` (paper §2.3), starting from state
/// `from`.
///
/// `po` may relate identifiers outside `X`; only its restriction to `X`'s
/// identifiers matters (the paper's abuse of notation after Lemma 2.4).
/// Values are deduplicated with `PartialEq`; at most `cap` linear extensions
/// are explored.
///
/// Returns an empty vector iff `po` restricted to `X` is cyclic — for a
/// genuine partial order the result is nonempty (Lemma 2.5).
pub fn valset<T: SerialDataType>(
    dt: &T,
    from: &T::State,
    ops: &BTreeMap<OpId, OpDescriptor<T::Operator>>,
    po: &Digraph<OpId>,
    x: OpId,
    cap: usize,
) -> Vec<T::Value> {
    let keys: BTreeSet<OpId> = ops.keys().copied().collect();
    let mut induced = po.induced_on(&keys);
    for k in &keys {
        induced.add_node(*k);
    }
    let mut out: Vec<T::Value> = Vec::new();
    for ext in induced.linear_extensions(cap) {
        if let Some(v) = value_along(dt, from, ext.iter().map(|id| &ops[id]), x) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// Whether `v` is a member of `valset_σ(x, X, ≺)` — i.e. whether some total
/// order consistent with `po` *explains* the response `(x, v)` (paper §4).
///
/// Exact but exponential; `cap` bounds the number of extensions explored, so
/// `false` answers are definite only when the cap was not hit. Checkers that
/// need certainty use witness orders instead (see `esds-spec`).
pub fn valset_contains<T: SerialDataType>(
    dt: &T,
    from: &T::State,
    ops: &BTreeMap<OpId, OpDescriptor<T::Operator>>,
    po: &Digraph<OpId>,
    x: OpId,
    v: &T::Value,
    cap: usize,
) -> bool {
    let keys: BTreeSet<OpId> = ops.keys().copied().collect();
    let mut induced = po.induced_on(&keys);
    for k in &keys {
        induced.add_node(*k);
    }
    induced
        .linear_extensions(cap)
        .into_iter()
        .any(|ext| value_along(dt, from, ext.iter().map(|id| &ops[id]), x).as_ref() == Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    /// Counter with increment / double / read (paper §10.3's example type).
    struct Counter;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Double,
        Read,
    }
    impl SerialDataType for Counter {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Double => (s * 2, s * 2),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    fn desc(s: u64, op: Op) -> OpDescriptor<Op> {
        OpDescriptor::new(id(s), op)
    }

    fn opmap(ds: impl IntoIterator<Item = OpDescriptor<Op>>) -> BTreeMap<OpId, OpDescriptor<Op>> {
        ds.into_iter().map(|d| (d.id, d)).collect()
    }

    #[test]
    fn outcome_and_value_along() {
        let dt = Counter;
        let order = vec![desc(0, Op::Inc), desc(1, Op::Inc), desc(2, Op::Read)];
        assert_eq!(outcome(&dt, &0, &order), 2);
        assert_eq!(value_along(&dt, &0, &order, id(2)), Some(2));
        assert_eq!(value_along(&dt, &0, &order, id(0)), Some(1));
        assert_eq!(value_along(&dt, &0, &order, id(9)), None);
    }

    #[test]
    fn values_along_matches_value_along() {
        let dt = Counter;
        let order = vec![desc(0, Op::Inc), desc(1, Op::Double), desc(2, Op::Read)];
        let (state, vals) = values_along(&dt, &1, &order);
        assert_eq!(state, 4);
        for d in &order {
            assert_eq!(
                Some(&vals[&d.id]),
                value_along(&dt, &1, &order, d.id).as_ref()
            );
        }
    }

    #[test]
    fn valset_unordered_inc_double() {
        // From state 1: {inc, double} unordered. Read's valset after both
        // exists only under orders; reading BETWEEN them varies. valset of
        // the read with read unordered w.r.t. both: many values.
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(1, Op::Double), desc(2, Op::Read)]);
        let po = Digraph::new(); // no constraints at all
        let vs = valset(&dt, &1, &ops, &po, id(2), 1000);
        // Orders: read can see 1 (first), 2 (after inc), 2 (after double),
        // 3 (double;inc), 4 (inc;double).
        let mut sorted = vs.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
    }

    #[test]
    fn valset_shrinks_with_more_constraints_lemma_2_6() {
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(1, Op::Double), desc(2, Op::Read)]);
        let weak = Digraph::new();
        let mut strong = Digraph::new();
        strong.add_edge(id(0), id(1));
        strong.add_edge(id(1), id(2));
        let vs_weak = valset(&dt, &1, &ops, &weak, id(2), 1000);
        let vs_strong = valset(&dt, &1, &ops, &strong, id(2), 1000);
        assert_eq!(vs_strong, vec![4]);
        for v in &vs_strong {
            assert!(
                vs_weak.contains(v),
                "Lemma 2.6: valset(strong) ⊆ valset(weak)"
            );
        }
    }

    #[test]
    fn valset_total_order_is_singleton_lemma_2_7() {
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(1, Op::Double), desc(2, Op::Read)]);
        let total = Digraph::chain([id(0), id(1), id(2)]);
        for x in [id(0), id(1), id(2)] {
            assert_eq!(valset(&dt, &1, &ops, &total, x, 1000).len(), 1);
        }
    }

    #[test]
    fn valset_nonempty_lemma_2_5() {
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(1, Op::Inc)]);
        let po = Digraph::new();
        assert!(!valset(&dt, &0, &ops, &po, id(0), 10).is_empty());
    }

    #[test]
    fn valset_contains_agrees_with_valset() {
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(1, Op::Double), desc(2, Op::Read)]);
        let po = Digraph::new();
        for v in valset(&dt, &1, &ops, &po, id(2), 1000) {
            assert!(valset_contains(&dt, &1, &ops, &po, id(2), &v, 1000));
        }
        assert!(!valset_contains(&dt, &1, &ops, &po, id(2), &99, 1000));
    }

    #[test]
    fn valset_respects_external_constraint_nodes() {
        // po mentions an id outside X; the restriction must ignore it but
        // keep paths through it (1 → ghost → 2 still orders 1 before 2).
        let dt = Counter;
        let ops = opmap([desc(0, Op::Inc), desc(2, Op::Read)]);
        let mut po = Digraph::new();
        po.add_edge(id(0), id(1)); // id(1) not in X
        po.add_edge(id(1), id(2));
        let vs = valset(&dt, &0, &ops, &po, id(2), 1000);
        assert_eq!(vs, vec![1]); // read always after inc
    }
}

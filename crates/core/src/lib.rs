//! # esds-core
//!
//! Core vocabulary of the *Eventually-Serializable Data Services* paper
//! (Fekete, Gupta, Luchangco, Lynch, Shvartsman; PODC'96 / TCS'99):
//!
//! * [`ClientId`], [`ReplicaId`], [`OpId`] — identities (§6.2);
//! * [`OpDescriptor`], [`csc`] — operation descriptors and client-specified
//!   constraints (§2.3, §4);
//! * [`Digraph`] — relations, strict partial orders, linear extensions
//!   (§2.1);
//! * [`SerialDataType`] — the data-type algebra (Σ, σ₀, V, O, τ) (§2.2) and
//!   [`CommutativitySpec`] (§10.3);
//! * [`outcome`], [`value_along`], [`valset`] — outcomes and value sets of
//!   operation sets under orders (§2.3);
//! * [`Label`], [`LabelSlot`], [`LabelMap`], [`LabelGenerator`] — the
//!   replicas' well-ordered label sets (§6.3);
//! * [`IdSummary`] — watermark + exception summaries of id sets (§10.2);
//! * [`KeyedDataType`], [`ShardRouter`], [`RoutingTable`],
//!   [`MigrationPlan`], [`ShardedOpId`] — keyspace partitioning for
//!   sharded multi-group deployments (the paper's §10 commutativity
//!   insight applied at the partition level), with a versioned
//!   `key → slot → shard` indirection so shards can be added or drained
//!   by migrating slots.
//!
//! Everything here is purely functional/in-memory; the executable
//! specification lives in `esds-spec`, the distributed algorithm in
//! `esds-alg`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod data_type;
mod error;
mod eval;
mod ids;
mod label;
mod op;
mod order;
mod shard;
mod summary;

pub use data_type::{commutes_at, oblivious_at, CommutativitySpec, SerialDataType};
pub use error::{PreconditionError, WellFormednessError};
pub use eval::{outcome, valset, valset_contains, value_along, values_along};
pub use ids::{ClientId, OpId, ReplicaId};
pub use label::{Label, LabelGenerator, LabelMap, LabelSlot};
pub use op::{csc, OpDescriptor};
pub use order::{total_order_consistent, Digraph};
pub use shard::{
    fnv1a_64, gather_frontier, shard_frontier, KeyedDataType, MigrationPlan, RoutingTable,
    ShardRouter, ShardedOpId, SlotMove, HOME_SHARD, HOME_SLOT, SLOT_COUNT,
};
pub use summary::IdSummary;

//! Compact summaries of operation-identifier sets (paper §10.2).
//!
//! Section 10.2 observes that identifiers "cannot be so readily dispensed
//! with, since they are required in case they are included in the `prev`
//! sets of future operations", but that "by imposing some structure on
//! these identifiers, it is possible to summarize them so they do not take
//! linear space with the number of operations issued", citing the multipart
//! timestamps of Ladin et al. as the sophisticated variant.
//!
//! Our identifiers already carry the required structure: an [`OpId`] is a
//! (client, per-client sequence number) pair, and each client issues
//! consecutive sequence numbers. A set of identifiers that is *downward
//! closed per client* (contains `c:0 .. c:k` for each client `c`) is then
//! fully described by one watermark per client — exactly a multipart
//! timestamp. [`IdSummary`] stores such a watermark vector plus an
//! *exception set* for identifiers received out of order, so it represents
//! **any** finite set of identifiers exactly, while collapsing the common
//! downward-closed case to one integer per client.
//!
//! The `done` and `stable` components of gossip messages are downward
//! closed per client in steady state (operations from one client are done
//! in sequence order unless `prev` sets reach across clients), so encoding
//! them as summaries shrinks gossip from `O(#ops)` to `O(#clients)` — the
//! §10.4 experiment `tab_id_summary` measures this on live gossip streams.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, OpId};

/// An exact, compact representation of a finite set of [`OpId`]s.
///
/// Invariant: for every client `c` with watermark `w`, the set contains
/// exactly the ids `c:0 … c:(w-1)` plus the ids in the exception set; no
/// exception has sequence `< w` for its client. [`IdSummary::insert`] and
/// [`IdSummary::merge`] re-establish the invariant by advancing watermarks
/// over contiguous exceptions (*compaction*).
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, IdSummary, OpId};
///
/// let mut s = IdSummary::new();
/// s.insert(OpId::new(ClientId(1), 0));
/// s.insert(OpId::new(ClientId(1), 1));
/// s.insert(OpId::new(ClientId(1), 3)); // gap at seq 2
/// assert!(s.contains(OpId::new(ClientId(1), 1)));
/// assert!(!s.contains(OpId::new(ClientId(1), 2)));
/// assert_eq!(s.len(), 3);
/// // Two ids are covered by the watermark, one is an exception.
/// assert_eq!(s.watermark(ClientId(1)), 2);
/// assert_eq!(s.exception_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct IdSummary {
    /// Per-client watermark `w`: all sequences `< w` are members.
    watermarks: BTreeMap<ClientId, u64>,
    /// Members at or above their client's watermark.
    exceptions: BTreeSet<OpId>,
}

impl IdSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary of the given identifiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use esds_core::{ClientId, IdSummary, OpId};
    /// let ids = (0..100).map(|s| OpId::new(ClientId(0), s));
    /// let summary = IdSummary::from_ids(ids);
    /// assert_eq!(summary.len(), 100);
    /// assert_eq!(summary.exception_count(), 0); // pure watermark
    /// ```
    pub fn from_ids(ids: impl IntoIterator<Item = OpId>) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: OpId) -> bool {
        id.seq() < self.watermark(id.client()) || self.exceptions.contains(&id)
    }

    /// The watermark for `client` (0 if none recorded): every sequence
    /// strictly below it is a member.
    pub fn watermark(&self, client: ClientId) -> u64 {
        self.watermarks.get(&client).copied().unwrap_or(0)
    }

    /// Adds a member. Returns `true` if it was new.
    pub fn insert(&mut self, id: OpId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.exceptions.insert(id);
        self.compact_client(id.client());
        true
    }

    /// Merges another summary into this one (set union).
    pub fn merge(&mut self, other: &IdSummary) {
        let clients: BTreeSet<ClientId> = other
            .watermarks
            .keys()
            .copied()
            .chain(other.exceptions.iter().map(|id| id.client()))
            .collect();
        for (c, w) in &other.watermarks {
            let mine = self.watermarks.entry(*c).or_insert(0);
            *mine = (*mine).max(*w);
        }
        for id in &other.exceptions {
            if !self.contains(*id) {
                self.exceptions.insert(*id);
            }
        }
        for c in clients {
            self.compact_client(c);
        }
    }

    /// Number of members.
    ///
    /// The watermark contribution is exact because watermark `w` covers the
    /// `w` sequences `0..w`.
    pub fn len(&self) -> usize {
        let wm: u64 = self.watermarks.values().sum();
        wm as usize + self.exceptions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.watermarks.values().all(|w| *w == 0) && self.exceptions.is_empty()
    }

    /// Number of identifiers stored explicitly (not covered by watermarks).
    /// This — not [`len`](Self::len) — is what the summary spends memory and
    /// message bytes on.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// The set difference `self − other` as a summary.
    ///
    /// Cost is proportional to the *difference* plus the two summaries'
    /// stored entries (watermarks and exceptions), **not** to
    /// [`len`](Self::len): per client only the sequences between the two
    /// watermarks are examined. This is what makes an `IdSummary` exchange
    /// O(delta) — batched gossip (§10.4) ships complete `done`/`stable`
    /// summaries and receivers diff them against what they have already
    /// folded in, touching only the new identifiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use esds_core::{ClientId, IdSummary, OpId};
    ///
    /// let big = IdSummary::from_ids((0..100).map(|s| OpId::new(ClientId(0), s)));
    /// let small = IdSummary::from_ids((0..98).map(|s| OpId::new(ClientId(0), s)));
    /// let delta = big.difference(&small);
    /// assert_eq!(delta.len(), 2);
    /// assert!(delta.contains(OpId::new(ClientId(0), 99)));
    /// assert!(small.difference(&big).is_empty());
    /// ```
    pub fn difference(&self, other: &IdSummary) -> IdSummary {
        let mut out = IdSummary::new();
        for (c, w) in &self.watermarks {
            for seq in other.watermark(*c)..*w {
                let id = OpId::new(*c, seq);
                if !other.contains(id) {
                    out.insert(id);
                }
            }
        }
        for id in &self.exceptions {
            if !other.contains(*id) {
                out.insert(*id);
            }
        }
        out
    }

    /// Whether every member of `other` is a member of `self`.
    pub fn covers(&self, other: &IdSummary) -> bool {
        for (c, w) in &other.watermarks {
            if self.watermark(*c) < *w {
                // Members below other's watermark must each be covered.
                for seq in self.watermark(*c)..*w {
                    if !self.contains(OpId::new(*c, seq)) {
                        return false;
                    }
                }
            }
        }
        other.exceptions.iter().all(|id| self.contains(*id))
    }

    /// Iterates over all members, client-major. The watermark part is
    /// materialized lazily; cost is `O(len)`.
    pub fn iter(&self) -> impl Iterator<Item = OpId> + '_ {
        let clients: BTreeSet<ClientId> = self
            .watermarks
            .keys()
            .copied()
            .chain(self.exceptions.iter().map(|id| id.client()))
            .collect();
        clients.into_iter().flat_map(move |c| {
            let w = self.watermark(c);
            let below = (0..w).map(move |seq| OpId::new(c, seq));
            let above = self
                .exceptions
                .range(OpId::new(c, 0)..=OpId::new(c, u64::MAX))
                .copied();
            below.chain(above)
        })
    }

    /// The members not covered by watermarks, in order.
    pub fn exceptions(&self) -> impl Iterator<Item = OpId> + '_ {
        self.exceptions.iter().copied()
    }

    /// The (client, watermark) pairs with nonzero watermark.
    pub fn watermarks(&self) -> impl Iterator<Item = (ClientId, u64)> + '_ {
        self.watermarks
            .iter()
            .filter(|(_, w)| **w > 0)
            .map(|(c, w)| (*c, *w))
    }

    /// Approximate encoded size in bytes, comparable to the 16-bytes-per-id
    /// estimate used for plain id lists in gossip sizing: each watermark
    /// entry costs 12 bytes (client + u64), each exception 16.
    pub fn approx_bytes(&self) -> usize {
        12 * self.watermarks.iter().filter(|(_, w)| **w > 0).count() + 16 * self.exceptions.len()
    }

    /// Advances `client`'s watermark over contiguous exceptions and prunes
    /// exceptions the watermark already covers (a merge can raise the
    /// watermark over ids that were exceptional before).
    fn compact_client(&mut self, client: ClientId) {
        let mut w = self.watermark(client);
        let covered: Vec<OpId> = self
            .exceptions
            .range(OpId::new(client, 0)..OpId::new(client, w))
            .copied()
            .collect();
        for id in covered {
            self.exceptions.remove(&id);
        }
        while self.exceptions.remove(&OpId::new(client, w)) {
            w += 1;
        }
        if w > 0 {
            self.watermarks.insert(client, w);
        }
    }
}

impl FromIterator<OpId> for IdSummary {
    fn from_iter<I: IntoIterator<Item = OpId>>(iter: I) -> Self {
        Self::from_ids(iter)
    }
}

impl Extend<OpId> for IdSummary {
    fn extend<I: IntoIterator<Item = OpId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl fmt::Display for IdSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (c, w) in self.watermarks() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}:<{w}")?;
        }
        for id in self.exceptions() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn empty_summary() {
        let s = IdSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(id(0, 0)));
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn consecutive_inserts_collapse_to_watermark() {
        let mut s = IdSummary::new();
        for seq in 0..1000 {
            assert!(s.insert(id(3, seq)));
        }
        assert_eq!(s.len(), 1000);
        assert_eq!(s.exception_count(), 0);
        assert_eq!(s.watermark(ClientId(3)), 1000);
        assert!(s.approx_bytes() < 16);
    }

    #[test]
    fn out_of_order_inserts_compact_when_gap_fills() {
        let mut s = IdSummary::new();
        s.insert(id(0, 2));
        s.insert(id(0, 0));
        assert_eq!(s.watermark(ClientId(0)), 1);
        assert_eq!(s.exception_count(), 1);
        // Filling the gap swallows the exception.
        s.insert(id(0, 1));
        assert_eq!(s.watermark(ClientId(0)), 3);
        assert_eq!(s.exception_count(), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn reinsert_is_noop() {
        let mut s = IdSummary::new();
        assert!(s.insert(id(1, 0)));
        assert!(!s.insert(id(1, 0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_is_union() {
        let a = IdSummary::from_ids([id(0, 0), id(0, 1), id(1, 5)]);
        let b = IdSummary::from_ids([id(0, 2), id(1, 0), id(2, 0)]);
        let mut m = a.clone();
        m.merge(&b);
        let want: BTreeSet<OpId> =
            [id(0, 0), id(0, 1), id(0, 2), id(1, 5), id(1, 0), id(2, 0)].into();
        let got: BTreeSet<OpId> = m.iter().collect();
        assert_eq!(got, want);
        assert_eq!(m.len(), want.len());
        // 0's watermark advanced over both halves.
        assert_eq!(m.watermark(ClientId(0)), 3);
        assert!(m.covers(&a));
        assert!(m.covers(&b));
        assert!(!a.covers(&b));
    }

    #[test]
    fn merge_compacts_across_sources() {
        // a has the evens, b the odds: union is downward closed.
        let a = IdSummary::from_ids((0..10).step_by(2).map(|s| id(0, s)));
        let b = IdSummary::from_ids((1..10).step_by(2).map(|s| id(0, s)));
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.watermark(ClientId(0)), 10);
        assert_eq!(m.exception_count(), 0);
    }

    #[test]
    fn merge_prunes_exceptions_overtaken_by_watermark() {
        // Regression (found by the set-model proptest): `a` holds c2:1 as
        // an exception; merging `b`, whose watermark already covers it,
        // must not leave the id counted twice.
        let a = IdSummary::from_ids([id(2, 1)]);
        let b = IdSummary::from_ids([id(2, 0), id(2, 1)]);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.exception_count(), 0);
        assert_eq!(m.watermark(ClientId(2)), 2);
    }

    #[test]
    fn covers_checks_watermark_shortfall_against_exceptions() {
        // self covers seq 0 via exception only (watermark 0 after gap).
        let mut s = IdSummary::new();
        s.insert(id(0, 1));
        let other = IdSummary::from_ids([id(0, 0), id(0, 1)]);
        assert!(!s.covers(&other));
        s.insert(id(0, 0));
        assert!(s.covers(&other));
    }

    #[test]
    fn difference_is_set_minus() {
        let a = IdSummary::from_ids([id(0, 0), id(0, 1), id(0, 2), id(1, 0), id(2, 5)]);
        let b = IdSummary::from_ids([id(0, 1), id(1, 0), id(1, 1)]);
        let d = a.difference(&b);
        let got: BTreeSet<OpId> = d.iter().collect();
        let want: BTreeSet<OpId> = [id(0, 0), id(0, 2), id(2, 5)].into();
        assert_eq!(got, want);
        // other's exceptions above its watermark are honoured.
        let mut c = IdSummary::new();
        c.insert(id(0, 2)); // exception, watermark 0
        let d = a.difference(&c);
        assert!(!d.contains(id(0, 2)));
        assert!(d.contains(id(0, 0)));
        // Difference against self / empty.
        assert!(a.difference(&a).is_empty());
        assert_eq!(a.difference(&IdSummary::new()), a);
    }

    #[test]
    fn iter_yields_all_members_in_order() {
        let s = IdSummary::from_ids([id(1, 0), id(0, 0), id(0, 1), id(0, 5)]);
        let got: Vec<OpId> = s.iter().collect();
        assert_eq!(got, vec![id(0, 0), id(0, 1), id(0, 5), id(1, 0)]);
    }

    #[test]
    fn display_shows_watermarks_and_exceptions() {
        let s = IdSummary::from_ids([id(0, 0), id(0, 1), id(2, 7)]);
        assert_eq!(s.to_string(), "{c0:<2, c2:7}");
    }

    #[test]
    fn bytes_beat_plain_lists_on_dense_sets() {
        let ids: Vec<OpId> = (0..4)
            .flat_map(|c| (0..250).map(move |s| id(c, s)))
            .collect();
        let s = IdSummary::from_ids(ids.iter().copied());
        let plain = 16 * ids.len();
        assert_eq!(s.len(), ids.len());
        assert!(
            s.approx_bytes() * 100 < plain,
            "summary {} should be ≪ plain {plain}",
            s.approx_bytes()
        );
    }
}

//! Error types shared across the ESDS crates.

use std::error::Error;
use std::fmt;

use crate::ids::OpId;

/// Violations of the well-formedness assumptions on clients (paper §4) and
/// of automata preconditions, surfaced by the executable specifications and
/// checkers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WellFormednessError {
    /// An operation identifier was reused (violates Invariant 4.1).
    DuplicateId(OpId),
    /// A `prev` set names an identifier never requested (violates the
    /// `x.prev ⊆ requested.id` assumption).
    UnknownPrev {
        /// The operation whose `prev` set is invalid.
        op: OpId,
        /// The unknown identifier it names.
        missing: OpId,
    },
    /// The client-specified constraints have a cycle, so `TC(CSC)` is not a
    /// strict partial order (violates Invariant 4.2).
    CyclicConstraints(OpId),
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::DuplicateId(id) => {
                write!(f, "operation identifier {id} was already requested")
            }
            WellFormednessError::UnknownPrev { op, missing } => {
                write!(f, "operation {op} depends on unknown operation {missing}")
            }
            WellFormednessError::CyclicConstraints(id) => {
                write!(
                    f,
                    "request {id} makes the client-specified constraints cyclic"
                )
            }
        }
    }
}

impl Error for WellFormednessError {}

/// A specification-automaton precondition that failed to hold when an action
/// was attempted (used by `esds-spec` and the conformance observer to report
/// *which* proof obligation broke).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreconditionError {
    /// The automaton action that was attempted (e.g. `"enter"`).
    pub action: &'static str,
    /// The clause that failed, quoted from the paper's precondition.
    pub clause: &'static str,
    /// Human-readable detail (ids involved, etc.).
    pub detail: String,
}

impl PreconditionError {
    /// Creates a precondition failure record.
    pub fn new(action: &'static str, clause: &'static str, detail: impl Into<String>) -> Self {
        PreconditionError {
            action,
            clause,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PreconditionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precondition of {} failed: {} ({})",
            self.action, self.clause, self.detail
        )
    }
}

impl Error for PreconditionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let id = OpId::new(ClientId(1), 2);
        let e = WellFormednessError::DuplicateId(id);
        assert!(e.to_string().contains("c1:2"));
        let e = WellFormednessError::UnknownPrev {
            op: id,
            missing: OpId::new(ClientId(0), 0),
        };
        assert!(e.to_string().contains("c0:0"));
        let e = PreconditionError::new("enter", "x.prev ⊆ ops.id", "missing c0:0");
        assert!(e.to_string().contains("enter"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WellFormednessError>();
        assert_send_sync::<PreconditionError>();
    }
}

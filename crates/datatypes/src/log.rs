//! An append-only log — a data type where *no* two mutations commute
//! (append order is observable), stressing the service's ordering machinery.

use esds_core::{CommutativitySpec, SerialDataType};
use serde::{Deserialize, Serialize};

/// An append-only log of strings.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{AppendLog, LogOp, LogValue};
///
/// let dt = AppendLog;
/// let (s, _) = dt.apply(&dt.initial_state(), &LogOp::append("a"));
/// let (s, _) = dt.apply(&s, &LogOp::append("b"));
/// assert_eq!(dt.apply(&s, &LogOp::Len).1, LogValue::Len(2));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct AppendLog;

/// Operators of [`AppendLog`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LogOp {
    /// Append an entry (returns [`LogValue::Ack`]).
    Append(String),
    /// Return the number of entries.
    Len,
    /// Return the whole log.
    ReadAll,
}

impl LogOp {
    /// Convenience constructor for [`LogOp::Append`].
    pub fn append(s: impl Into<String>) -> Self {
        LogOp::Append(s.into())
    }
}

/// Values reported by [`AppendLog`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LogValue {
    /// Acknowledgement of an append.
    Ack,
    /// Log length.
    Len(usize),
    /// Full contents.
    Entries(Vec<String>),
}

impl SerialDataType for AppendLog {
    type State = Vec<String>;
    type Operator = LogOp;
    type Value = LogValue;

    fn initial_state(&self) -> Vec<String> {
        Vec::new()
    }

    fn apply(&self, s: &Vec<String>, op: &LogOp) -> (Vec<String>, LogValue) {
        match op {
            LogOp::Append(e) => {
                let mut ns = s.clone();
                ns.push(e.clone());
                (ns, LogValue::Ack)
            }
            LogOp::Len => (s.clone(), LogValue::Len(s.len())),
            LogOp::ReadAll => (s.clone(), LogValue::Entries(s.clone())),
        }
    }
}

impl CommutativitySpec for AppendLog {
    fn commutes(&self, a: &LogOp, b: &LogOp) -> bool {
        match (a, b) {
            // Two appends commute only if they append equal entries.
            (LogOp::Append(x), LogOp::Append(y)) => x == y,
            // Queries do not change state.
            _ => true,
        }
    }

    fn oblivious_to(&self, a: &LogOp, b: &LogOp) -> bool {
        match (a, b) {
            (LogOp::Append(_), _) => true,
            // Queries observe every append.
            (LogOp::Len | LogOp::ReadAll, LogOp::Append(_)) => false,
            (LogOp::Len | LogOp::ReadAll, _) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    #[test]
    fn append_order_matters() {
        let dt = AppendLog;
        let ab = dt.outcome_of_ops(&vec![], [&LogOp::append("a"), &LogOp::append("b")]);
        let ba = dt.outcome_of_ops(&vec![], [&LogOp::append("b"), &LogOp::append("a")]);
        assert_ne!(ab, ba);
        assert!(!dt.commutes(&LogOp::append("a"), &LogOp::append("b")));
    }

    fn any_op() -> impl Strategy<Value = LogOp> {
        prop_oneof![
            prop_oneof![Just("x".to_string()), Just("y".to_string())].prop_map(LogOp::Append),
            Just(LogOp::Len),
            Just(LogOp::ReadAll),
        ]
    }

    proptest! {
        #[test]
        fn spec_sound(
            a in any_op(),
            b in any_op(),
            s in proptest::collection::vec(prop_oneof![Just("p".to_string()), Just("q".to_string())], 0..3),
        ) {
            let dt = AppendLog;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b));
            }
        }
    }
}

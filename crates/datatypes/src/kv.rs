//! A string key-value store — the workhorse type for workload generation:
//! per-key conflicts, cross-key commutativity.

use std::collections::BTreeMap;

use esds_core::{CommutativitySpec, KeyedDataType, SerialDataType};
use serde::{Deserialize, Serialize};

/// A key-value store with string keys and values.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{KvStore, KvOp, KvValue};
///
/// let dt = KvStore;
/// let (s, _) = dt.apply(&dt.initial_state(), &KvOp::put("k", "v"));
/// assert_eq!(dt.apply(&s, &KvOp::get("k")).1, KvValue::Value(Some("v".into())));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct KvStore;

/// Operators of [`KvStore`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum KvOp {
    /// Insert or overwrite a key.
    Put(String, String),
    /// Read a key.
    Get(String),
    /// Remove a key.
    Remove(String),
    /// List all keys.
    Keys,
}

impl KvOp {
    /// Convenience constructor for [`KvOp::Put`].
    pub fn put(k: impl Into<String>, v: impl Into<String>) -> Self {
        KvOp::Put(k.into(), v.into())
    }

    /// Convenience constructor for [`KvOp::Get`].
    pub fn get(k: impl Into<String>) -> Self {
        KvOp::Get(k.into())
    }

    /// Convenience constructor for [`KvOp::Remove`].
    pub fn remove(k: impl Into<String>) -> Self {
        KvOp::Remove(k.into())
    }

    /// The key this operator touches, if any.
    pub fn key(&self) -> Option<&str> {
        match self {
            KvOp::Put(k, _) | KvOp::Get(k) | KvOp::Remove(k) => Some(k),
            KvOp::Keys => None,
        }
    }
}

/// Values reported by [`KvStore`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum KvValue {
    /// Acknowledgement of a put.
    Ack,
    /// The value observed by a get (None = absent).
    Value(Option<String>),
    /// Whether a remove found its key.
    Removed(bool),
    /// All keys.
    Keys(Vec<String>),
}

impl SerialDataType for KvStore {
    type State = BTreeMap<String, String>;
    type Operator = KvOp;
    type Value = KvValue;

    fn initial_state(&self) -> BTreeMap<String, String> {
        BTreeMap::new()
    }

    fn apply(
        &self,
        s: &BTreeMap<String, String>,
        op: &KvOp,
    ) -> (BTreeMap<String, String>, KvValue) {
        match op {
            KvOp::Put(k, v) => {
                let mut ns = s.clone();
                ns.insert(k.clone(), v.clone());
                (ns, KvValue::Ack)
            }
            KvOp::Get(k) => (s.clone(), KvValue::Value(s.get(k).cloned())),
            KvOp::Remove(k) => {
                let mut ns = s.clone();
                let removed = ns.remove(k).is_some();
                (ns, KvValue::Removed(removed))
            }
            KvOp::Keys => (s.clone(), KvValue::Keys(s.keys().cloned().collect())),
        }
    }
}

impl CommutativitySpec for KvStore {
    fn commutes(&self, a: &KvOp, b: &KvOp) -> bool {
        use KvOp::*;
        match (a, b) {
            // Queries never change state.
            (Get(_) | Keys, _) | (_, Get(_) | Keys) => true,
            (Put(ka, va), Put(kb, vb)) => ka != kb || va == vb,
            // Removes always commute: same key → both orders leave it
            // absent; different keys → independent entries.
            (Remove(_), Remove(_)) => true,
            (Put(ka, _), Remove(kb)) | (Remove(kb), Put(ka, _)) => ka != kb,
        }
    }

    fn oblivious_to(&self, a: &KvOp, b: &KvOp) -> bool {
        use KvOp::*;
        match a {
            Put(_, _) => true,
            Get(k) => match b {
                Get(_) | Keys => true,
                Put(kb, _) | Remove(kb) => k != kb,
            },
            // Remove returns presence of its key.
            Remove(k) => match b {
                Get(_) | Keys => true,
                Put(kb, _) | Remove(kb) => k != kb,
            },
            // Keys observes presence of every key.
            Keys => matches!(b, Get(_) | Keys),
        }
    }
}

/// The keyspace is the shard space: `Put`/`Get`/`Remove` are routed by
/// their key; `Keys` is a gatherable whole-object query — the sharded
/// layers run it on every involved shard and merge the per-shard key
/// lists here. Shards own disjoint key sets, so the merge is a sorted
/// disjoint union (dedup defends against a shard answering twice).
impl KeyedDataType for KvStore {
    fn shard_key<'a>(&self, op: &'a KvOp) -> Option<&'a str> {
        op.key()
    }

    fn merge_gathered(&self, op: &KvOp, parts: Vec<KvValue>) -> Option<KvValue> {
        match op {
            KvOp::Keys => {
                let mut all: Vec<String> = parts
                    .into_iter()
                    .flat_map(|v| match v {
                        KvValue::Keys(ks) => ks,
                        other => unreachable!("Keys sub-op answered {other:?}"),
                    })
                    .collect();
                all.sort();
                all.dedup();
                Some(KvValue::Keys(all))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let dt = KvStore;
        let (s, _) = dt.apply(&dt.initial_state(), &KvOp::put("a", "1"));
        assert_eq!(
            dt.apply(&s, &KvOp::get("a")).1,
            KvValue::Value(Some("1".into()))
        );
        let (s, v) = dt.apply(&s, &KvOp::remove("a"));
        assert_eq!(v, KvValue::Removed(true));
        assert_eq!(dt.apply(&s, &KvOp::get("a")).1, KvValue::Value(None));
    }

    #[test]
    fn cross_key_independence() {
        let dt = KvStore;
        assert!(dt.independent(&KvOp::put("a", "1"), &KvOp::put("b", "2")));
        assert!(!dt.commutes(&KvOp::put("a", "1"), &KvOp::put("a", "2")));
        assert!(dt.independent(&KvOp::get("a"), &KvOp::put("b", "2")));
        assert!(!dt.independent(&KvOp::get("a"), &KvOp::put("a", "2")));
    }

    #[test]
    fn keys_is_gatherable_and_merges_to_sorted_union() {
        let dt = KvStore;
        assert!(dt.is_gatherable(&KvOp::Keys));
        assert!(!dt.is_gatherable(&KvOp::get("a")));
        let merged = dt.merge_gathered(
            &KvOp::Keys,
            vec![
                KvValue::Keys(vec!["b".into(), "d".into()]),
                KvValue::Keys(vec!["a".into(), "c".into()]),
                KvValue::Keys(vec!["a".into()]),
            ],
        );
        assert_eq!(
            merged,
            Some(KvValue::Keys(vec![
                "a".into(),
                "b".into(),
                "c".into(),
                "d".into()
            ]))
        );
        assert_eq!(
            dt.merge_gathered(&KvOp::Keys, vec![]),
            Some(KvValue::Keys(vec![])),
            "the zero-part probe must answer"
        );
        assert_eq!(dt.merge_gathered(&KvOp::get("a"), vec![]), None);
    }

    fn any_key() -> impl Strategy<Value = String> {
        prop_oneof![Just("a".to_string()), Just("b".to_string())]
    }

    fn any_op() -> impl Strategy<Value = KvOp> {
        prop_oneof![
            (any_key(), any_key()).prop_map(|(k, v)| KvOp::Put(k, v)),
            any_key().prop_map(KvOp::Get),
            any_key().prop_map(KvOp::Remove),
            Just(KvOp::Keys),
        ]
    }

    proptest! {
        #[test]
        fn spec_sound(
            a in any_op(),
            b in any_op(),
            s in proptest::collection::btree_map(any_key(), any_key(), 0..3),
        ) {
            let dt = KvStore;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b), "a={a:?} b={b:?} s={s:?}");
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b), "a={a:?} b={b:?} s={s:?}");
            }
        }
    }
}

//! A name/attribute directory service — the application domain the paper
//! motivates (§1, §11.2): name objects with typed attributes, access
//! dominated by queries, updates propagated lazily.
//!
//! Section 11.2 describes the idiom this type supports: create a name, then
//! initialize its attributes with operations whose `prev` sets contain the
//! identifier of the creation operation, so initialization is never applied
//! before creation on any replica.

use std::collections::BTreeMap;

use esds_core::{CommutativitySpec, KeyedDataType, SerialDataType};
use serde::{Deserialize, Serialize};

/// A directory mapping names to attribute maps.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{Directory, DirectoryOp, DirectoryValue};
///
/// let dt = Directory;
/// let s0 = dt.initial_state();
/// let (s1, v) = dt.apply(&s0, &DirectoryOp::create("www"));
/// assert_eq!(v, DirectoryValue::Created(true));
/// let (s2, _) = dt.apply(&s1, &DirectoryOp::set_attr("www", "addr", "10.0.0.1"));
/// let (_, v) = dt.apply(&s2, &DirectoryOp::lookup("www", "addr"));
/// assert_eq!(v, DirectoryValue::Attr(Some("10.0.0.1".to_string())));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Directory;

/// The directory state: name → (attribute → value).
pub type DirectoryState = BTreeMap<String, BTreeMap<String, String>>;

/// Operators of [`Directory`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum DirectoryOp {
    /// Register a name with an empty attribute map (no-op if present).
    CreateName(String),
    /// Remove a name and its attributes (no-op if absent).
    RemoveName(String),
    /// Set one attribute of a name (no-op if the name is absent —
    /// the §11.2 idiom orders this after creation via `prev`).
    SetAttr {
        /// Name to update.
        name: String,
        /// Attribute key.
        attr: String,
        /// Attribute value.
        value: String,
    },
    /// Look up one attribute of a name.
    Lookup {
        /// Name to query.
        name: String,
        /// Attribute key.
        attr: String,
    },
    /// List all registered names.
    ListNames,
}

impl DirectoryOp {
    /// Convenience constructor for [`DirectoryOp::CreateName`].
    pub fn create(name: impl Into<String>) -> Self {
        DirectoryOp::CreateName(name.into())
    }

    /// Convenience constructor for [`DirectoryOp::RemoveName`].
    pub fn remove(name: impl Into<String>) -> Self {
        DirectoryOp::RemoveName(name.into())
    }

    /// Convenience constructor for [`DirectoryOp::SetAttr`].
    pub fn set_attr(
        name: impl Into<String>,
        attr: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        DirectoryOp::SetAttr {
            name: name.into(),
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`DirectoryOp::Lookup`].
    pub fn lookup(name: impl Into<String>, attr: impl Into<String>) -> Self {
        DirectoryOp::Lookup {
            name: name.into(),
            attr: attr.into(),
        }
    }

    /// The name this operator touches, if any (`ListNames` touches all).
    pub fn name(&self) -> Option<&str> {
        match self {
            DirectoryOp::CreateName(n)
            | DirectoryOp::RemoveName(n)
            | DirectoryOp::SetAttr { name: n, .. }
            | DirectoryOp::Lookup { name: n, .. } => Some(n),
            DirectoryOp::ListNames => None,
        }
    }

    /// Whether the operator is read-only.
    pub fn is_query(&self) -> bool {
        matches!(self, DirectoryOp::Lookup { .. } | DirectoryOp::ListNames)
    }
}

/// Values reported by [`Directory`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum DirectoryValue {
    /// Whether `CreateName` actually created (false = already present).
    Created(bool),
    /// Whether `RemoveName` actually removed.
    Removed(bool),
    /// Whether `SetAttr` found its name.
    AttrSet(bool),
    /// The attribute value found by `Lookup` (None = name or attr absent).
    Attr(Option<String>),
    /// The names returned by `ListNames`.
    Names(Vec<String>),
}

impl SerialDataType for Directory {
    type State = DirectoryState;
    type Operator = DirectoryOp;
    type Value = DirectoryValue;

    fn initial_state(&self) -> DirectoryState {
        BTreeMap::new()
    }

    fn apply(&self, s: &DirectoryState, op: &DirectoryOp) -> (DirectoryState, DirectoryValue) {
        match op {
            DirectoryOp::CreateName(n) => {
                let mut ns = s.clone();
                let created = !ns.contains_key(n);
                ns.entry(n.clone()).or_default();
                (ns, DirectoryValue::Created(created))
            }
            DirectoryOp::RemoveName(n) => {
                let mut ns = s.clone();
                let removed = ns.remove(n).is_some();
                (ns, DirectoryValue::Removed(removed))
            }
            DirectoryOp::SetAttr { name, attr, value } => {
                let mut ns = s.clone();
                let set = if let Some(attrs) = ns.get_mut(name) {
                    attrs.insert(attr.clone(), value.clone());
                    true
                } else {
                    false
                };
                (ns, DirectoryValue::AttrSet(set))
            }
            DirectoryOp::Lookup { name, attr } => {
                let v = s.get(name).and_then(|attrs| attrs.get(attr)).cloned();
                (s.clone(), DirectoryValue::Attr(v))
            }
            DirectoryOp::ListNames => (
                s.clone(),
                DirectoryValue::Names(s.keys().cloned().collect()),
            ),
        }
    }
}

impl CommutativitySpec for Directory {
    fn commutes(&self, a: &DirectoryOp, b: &DirectoryOp) -> bool {
        use DirectoryOp::*;
        if a.is_query() && b.is_query() {
            return true;
        }
        // Queries never change state, so they commute (state-wise) with
        // everything.
        if a.is_query() || b.is_query() {
            return true;
        }
        match (a.name(), b.name()) {
            // Mutations on different names commute.
            (Some(na), Some(nb)) if na != nb => true,
            _ => match (a, b) {
                // Same-name cases.
                (CreateName(_), CreateName(_)) => true, // both ensure presence
                (RemoveName(_), RemoveName(_)) => true, // both ensure absence
                (
                    SetAttr {
                        attr: aa,
                        value: va,
                        ..
                    },
                    SetAttr {
                        attr: ab,
                        value: vb,
                        ..
                    },
                ) => aa != ab || va == vb,
                // create/remove, create/set, remove/set conflict.
                _ => false,
            },
        }
    }

    fn oblivious_to(&self, a: &DirectoryOp, b: &DirectoryOp) -> bool {
        use DirectoryOp::*;
        match a {
            // ListNames observes every name: only oblivious to attribute
            // writes and other queries.
            ListNames => matches!(b, SetAttr { .. } | Lookup { .. } | ListNames),
            // Lookup observes one (name, attr).
            Lookup { name, attr } => match b {
                Lookup { .. } | ListNames => true,
                SetAttr {
                    name: nb, attr: ab, ..
                } => name != nb || attr != ab,
                CreateName(nb) | RemoveName(nb) => name != nb,
            },
            // Mutations return presence/absence information about their name.
            CreateName(n) | RemoveName(n) => match b {
                Lookup { .. } | ListNames => true,
                SetAttr { .. } => true, // set never changes presence
                CreateName(nb) | RemoveName(nb) => n != nb,
            },
            // SetAttr returns whether its name exists.
            SetAttr { name, .. } => match b {
                Lookup { .. } | ListNames => true,
                SetAttr { .. } => true,
                CreateName(nb) | RemoveName(nb) => name != nb,
            },
        }
    }
}

/// Names partition the directory: every per-name operator (create,
/// remove, set, lookup) is routed by its name — the §11.2 idiom of
/// creating a name and then initializing it with `prev`-ordered `SetAttr`s
/// stays entirely within one shard. `ListNames` is a gatherable
/// whole-object query: the sharded layers run it on every involved shard
/// and merge the per-shard name lists here (sorted disjoint union —
/// shards own disjoint name sets).
impl KeyedDataType for Directory {
    fn shard_key<'a>(&self, op: &'a DirectoryOp) -> Option<&'a str> {
        op.name()
    }

    fn merge_gathered(
        &self,
        op: &DirectoryOp,
        parts: Vec<DirectoryValue>,
    ) -> Option<DirectoryValue> {
        match op {
            DirectoryOp::ListNames => {
                let mut all: Vec<String> = parts
                    .into_iter()
                    .flat_map(|v| match v {
                        DirectoryValue::Names(ns) => ns,
                        other => unreachable!("ListNames sub-op answered {other:?}"),
                    })
                    .collect();
                all.sort();
                all.dedup();
                Some(DirectoryValue::Names(all))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    #[test]
    fn create_set_lookup_roundtrip() {
        let dt = Directory;
        let (s, v) = dt.apply(&dt.initial_state(), &DirectoryOp::create("a"));
        assert_eq!(v, DirectoryValue::Created(true));
        let (s, v) = dt.apply(&s, &DirectoryOp::create("a"));
        assert_eq!(v, DirectoryValue::Created(false));
        let (s, v) = dt.apply(&s, &DirectoryOp::set_attr("a", "k", "v"));
        assert_eq!(v, DirectoryValue::AttrSet(true));
        let (_, v) = dt.apply(&s, &DirectoryOp::lookup("a", "k"));
        assert_eq!(v, DirectoryValue::Attr(Some("v".into())));
    }

    #[test]
    fn set_attr_without_create_is_noop() {
        // This is exactly why §11.2 orders initialization after creation
        // with prev sets.
        let dt = Directory;
        let (s, v) = dt.apply(
            &dt.initial_state(),
            &DirectoryOp::set_attr("ghost", "k", "v"),
        );
        assert_eq!(v, DirectoryValue::AttrSet(false));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_then_list() {
        let dt = Directory;
        let (s, _) = dt.apply(&dt.initial_state(), &DirectoryOp::create("x"));
        let (s, _) = dt.apply(&s, &DirectoryOp::create("y"));
        let (s, v) = dt.apply(&s, &DirectoryOp::remove("x"));
        assert_eq!(v, DirectoryValue::Removed(true));
        let (_, v) = dt.apply(&s, &DirectoryOp::ListNames);
        assert_eq!(v, DirectoryValue::Names(vec!["y".into()]));
    }

    #[test]
    fn list_names_is_gatherable_and_merges_to_sorted_union() {
        let dt = Directory;
        assert!(dt.is_gatherable(&DirectoryOp::ListNames));
        assert!(!dt.is_gatherable(&DirectoryOp::lookup("a", "k")));
        let merged = dt.merge_gathered(
            &DirectoryOp::ListNames,
            vec![
                DirectoryValue::Names(vec!["y".into()]),
                DirectoryValue::Names(vec!["x".into(), "z".into()]),
            ],
        );
        assert_eq!(
            merged,
            Some(DirectoryValue::Names(vec![
                "x".into(),
                "y".into(),
                "z".into()
            ]))
        );
        assert_eq!(dt.merge_gathered(&DirectoryOp::create("a"), vec![]), None);
    }

    fn any_name() -> impl Strategy<Value = String> {
        prop_oneof![Just("a".to_string()), Just("b".to_string())]
    }

    fn any_op() -> impl Strategy<Value = DirectoryOp> {
        prop_oneof![
            any_name().prop_map(DirectoryOp::CreateName),
            any_name().prop_map(DirectoryOp::RemoveName),
            (any_name(), any_name(), any_name())
                .prop_map(|(n, a, v)| DirectoryOp::set_attr(n, a, v)),
            (any_name(), any_name()).prop_map(|(n, a)| DirectoryOp::lookup(n, a)),
            Just(DirectoryOp::ListNames),
        ]
    }

    fn any_state() -> impl Strategy<Value = DirectoryState> {
        proptest::collection::btree_map(
            any_name(),
            proptest::collection::btree_map(any_name(), any_name(), 0..2),
            0..3,
        )
    }

    proptest! {
        #[test]
        fn spec_sound(a in any_op(), b in any_op(), s in any_state()) {
            let dt = Directory;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b), "a={a:?} b={b:?} s={s:?}");
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b), "a={a:?} b={b:?} s={s:?}");
            }
        }
    }
}

//! A grow-only set — the archetype of a fully commutative data type, used
//! to exercise the commutativity-exploiting algorithm variant (paper §10.3)
//! on a workload where *all* mutations commute.

use std::collections::BTreeSet;

use esds_core::{CommutativitySpec, SerialDataType};
use serde::{Deserialize, Serialize};

/// A grow-only set of `u64` elements.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{GSet, GSetOp, GSetValue};
///
/// let dt = GSet;
/// let (s, _) = dt.apply(&dt.initial_state(), &GSetOp::Add(4));
/// assert_eq!(dt.apply(&s, &GSetOp::Contains(4)).1, GSetValue::Bool(true));
/// assert_eq!(dt.apply(&s, &GSetOp::Size).1, GSetValue::Size(1));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct GSet;

/// Operators of [`GSet`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum GSetOp {
    /// Insert an element (idempotent; returns [`GSetValue::Ack`]).
    Add(u64),
    /// Membership query.
    Contains(u64),
    /// Cardinality query.
    Size,
}

/// Values reported by [`GSet`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum GSetValue {
    /// Acknowledgement of an insertion.
    Ack,
    /// Result of a membership query.
    Bool(bool),
    /// Result of a cardinality query.
    Size(usize),
}

impl SerialDataType for GSet {
    type State = BTreeSet<u64>;
    type Operator = GSetOp;
    type Value = GSetValue;

    fn initial_state(&self) -> BTreeSet<u64> {
        BTreeSet::new()
    }

    fn apply(&self, s: &BTreeSet<u64>, op: &GSetOp) -> (BTreeSet<u64>, GSetValue) {
        match op {
            GSetOp::Add(e) => {
                let mut ns = s.clone();
                ns.insert(*e);
                (ns, GSetValue::Ack)
            }
            GSetOp::Contains(e) => (s.clone(), GSetValue::Bool(s.contains(e))),
            GSetOp::Size => (s.clone(), GSetValue::Size(s.len())),
        }
    }
}

impl CommutativitySpec for GSet {
    fn commutes(&self, _a: &GSetOp, _b: &GSetOp) -> bool {
        // Insertions into a set commute; queries do not change state.
        true
    }

    fn oblivious_to(&self, a: &GSetOp, b: &GSetOp) -> bool {
        match (a, b) {
            (GSetOp::Add(_), _) => true,
            (GSetOp::Contains(_), GSetOp::Contains(_) | GSetOp::Size) => true,
            // Contains(e) is affected only by Add(e).
            (GSetOp::Contains(e), GSetOp::Add(f)) => e != f,
            (GSetOp::Size, GSetOp::Contains(_) | GSetOp::Size) => true,
            // Size sees every insertion (it may or may not be new — state-
            // dependent, so conservatively not oblivious).
            (GSetOp::Size, GSetOp::Add(_)) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    #[test]
    fn adds_are_idempotent() {
        let dt = GSet;
        let (s, _) = dt.apply(&dt.initial_state(), &GSetOp::Add(1));
        let (s, _) = dt.apply(&s, &GSetOp::Add(1));
        assert_eq!(dt.apply(&s, &GSetOp::Size).1, GSetValue::Size(1));
    }

    #[test]
    fn all_mutations_independent() {
        let dt = GSet;
        assert!(dt.independent(&GSetOp::Add(1), &GSetOp::Add(2)));
        assert!(dt.independent(&GSetOp::Add(1), &GSetOp::Add(1)));
        assert!(!dt.independent(&GSetOp::Contains(1), &GSetOp::Add(1)));
        assert!(dt.independent(&GSetOp::Contains(1), &GSetOp::Add(2)));
    }

    fn any_op() -> impl Strategy<Value = GSetOp> {
        prop_oneof![
            (0u64..5).prop_map(GSetOp::Add),
            (0u64..5).prop_map(GSetOp::Contains),
            Just(GSetOp::Size),
        ]
    }

    proptest! {
        #[test]
        fn spec_sound(
            a in any_op(),
            b in any_op(),
            s in proptest::collection::btree_set(0u64..5, 0..4),
        ) {
            let dt = GSet;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b));
            }
        }
    }
}

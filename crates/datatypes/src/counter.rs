//! An integer counter with increment, double, and read — the paper's own
//! example (§10.3): *increment* and *double* do not commute, so clients of
//! the commutativity-exploiting algorithm must order them explicitly.

use esds_core::{CommutativitySpec, SerialDataType};
use serde::{Deserialize, Serialize};

/// A counter over `i64` starting at `0`.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{Counter, CounterOp, CounterValue};
///
/// let dt = Counter;
/// let (s, _) = dt.apply(&1, &CounterOp::Increment(1));
/// assert_eq!(dt.apply(&s, &CounterOp::Double).0, 4);
/// let (s, _) = dt.apply(&1, &CounterOp::Double);
/// assert_eq!(dt.apply(&s, &CounterOp::Increment(1)).0, 3);
/// // 4 ≠ 3: the paper's divergence example.
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Counter;

/// Operators of [`Counter`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum CounterOp {
    /// Add a constant (returns [`CounterValue::Ack`]).
    Increment(i64),
    /// Multiply by two (returns [`CounterValue::Ack`]).
    Double,
    /// Return the current count.
    Read,
}

/// Values reported by [`Counter`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum CounterValue {
    /// Acknowledgement of a mutation.
    Ack,
    /// The count observed by a read.
    Count(i64),
}

impl SerialDataType for Counter {
    type State = i64;
    type Operator = CounterOp;
    type Value = CounterValue;

    fn initial_state(&self) -> i64 {
        0
    }

    fn apply(&self, s: &i64, op: &CounterOp) -> (i64, CounterValue) {
        match op {
            CounterOp::Increment(d) => (s.wrapping_add(*d), CounterValue::Ack),
            CounterOp::Double => (s.wrapping_mul(2), CounterValue::Ack),
            CounterOp::Read => (*s, CounterValue::Count(*s)),
        }
    }
}

impl CommutativitySpec for Counter {
    fn commutes(&self, a: &CounterOp, b: &CounterOp) -> bool {
        use CounterOp::*;
        match (a, b) {
            (Read, _) | (_, Read) => true,
            (Increment(_), Increment(_)) => true, // addition commutes
            (Double, Double) => true,             // ×2 commutes with itself
            (Increment(0), Double) | (Double, Increment(0)) => true,
            (Increment(_), Double) | (Double, Increment(_)) => false,
        }
    }

    fn oblivious_to(&self, a: &CounterOp, b: &CounterOp) -> bool {
        use CounterOp::*;
        match (a, b) {
            // Mutations return Ack — state-independent.
            (Increment(_), _) | (Double, _) => true,
            // A read sees state changes unless the other op is a no-op.
            (Read, Read) => true,
            (Read, Increment(0)) => true,
            (Read, Increment(_)) | (Read, Double) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    fn any_op() -> impl Strategy<Value = CounterOp> {
        prop_oneof![
            (-3i64..4).prop_map(CounterOp::Increment),
            Just(CounterOp::Double),
            Just(CounterOp::Read),
        ]
    }

    #[test]
    fn paper_divergence_example() {
        // From state 1: inc;double = 4 but double;inc = 3 (paper §10.3).
        let dt = Counter;
        assert_eq!(
            dt.outcome_of_ops(&1, [&CounterOp::Increment(1), &CounterOp::Double]),
            4
        );
        assert_eq!(
            dt.outcome_of_ops(&1, [&CounterOp::Double, &CounterOp::Increment(1)]),
            3
        );
        assert!(!dt.commutes(&CounterOp::Increment(1), &CounterOp::Double));
    }

    #[test]
    fn increments_commute() {
        let dt = Counter;
        assert!(dt.commutes(&CounterOp::Increment(2), &CounterOp::Increment(-7)));
        assert!(dt.independent(&CounterOp::Increment(2), &CounterOp::Increment(3)));
    }

    #[test]
    fn read_not_independent_of_mutations() {
        let dt = Counter;
        assert!(!dt.independent(&CounterOp::Read, &CounterOp::Increment(1)));
        assert!(dt.independent(&CounterOp::Read, &CounterOp::Read));
    }

    proptest! {
        #[test]
        fn spec_sound(a in any_op(), b in any_op(), state in -10i64..10) {
            let dt = Counter;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &state, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &state, &a, &b));
            }
        }
    }
}

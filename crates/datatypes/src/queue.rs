//! A FIFO queue — a strongly non-commutative serial data type.
//!
//! Queues are the opposite extreme from the paper's directory-service
//! motivation: almost nothing commutes (enqueue order is observable,
//! dequeues compete for the front element), so clients either order
//! operations explicitly via `prev` chains or request `strict` dequeues
//! that wait for stability. The `examples/` and `tests/` use it to
//! exercise the expensive end of the consistency spectrum.

use std::collections::VecDeque;

use esds_core::{CommutativitySpec, SerialDataType};
use serde::{Deserialize, Serialize};

/// A FIFO queue of `i64` items, initially empty.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{Queue, QueueOp, QueueValue};
///
/// let dt = Queue;
/// let s0 = dt.initial_state();
/// let (s1, _) = dt.apply(&s0, &QueueOp::Enqueue(7));
/// let (s2, v) = dt.apply(&s1, &QueueOp::Dequeue);
/// assert_eq!(v, QueueValue::Item(Some(7)));
/// assert_eq!(dt.apply(&s2, &QueueOp::Dequeue).1, QueueValue::Item(None));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Queue;

/// Operators of [`Queue`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum QueueOp {
    /// Append an item at the back (returns [`QueueValue::Ack`]).
    Enqueue(i64),
    /// Remove and return the front item (`None` when empty).
    Dequeue,
    /// Return the front item without removing it.
    Peek,
    /// Return the number of queued items.
    Len,
}

/// Values reported by [`Queue`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum QueueValue {
    /// Acknowledgement of an enqueue.
    Ack,
    /// The item removed or observed (`None` when the queue was empty).
    Item(Option<i64>),
    /// The queue length observed.
    Size(u64),
}

impl SerialDataType for Queue {
    type State = VecDeque<i64>;
    type Operator = QueueOp;
    type Value = QueueValue;

    fn initial_state(&self) -> VecDeque<i64> {
        VecDeque::new()
    }

    fn apply(&self, s: &VecDeque<i64>, op: &QueueOp) -> (VecDeque<i64>, QueueValue) {
        match op {
            QueueOp::Enqueue(x) => {
                let mut t = s.clone();
                t.push_back(*x);
                (t, QueueValue::Ack)
            }
            QueueOp::Dequeue => {
                let mut t = s.clone();
                let item = t.pop_front();
                (t, QueueValue::Item(item))
            }
            QueueOp::Peek => (s.clone(), QueueValue::Item(s.front().copied())),
            QueueOp::Len => (s.clone(), QueueValue::Size(s.len() as u64)),
        }
    }
}

impl CommutativitySpec for Queue {
    fn commutes(&self, a: &QueueOp, b: &QueueOp) -> bool {
        use QueueOp::*;
        match (a, b) {
            // Reads never change state.
            (Peek | Len, _) | (_, Peek | Len) => true,
            // Equal enqueues produce the same queue either way.
            (Enqueue(x), Enqueue(y)) => x == y,
            // Two dequeues remove the same two front items in either order.
            (Dequeue, Dequeue) => true,
            // Enqueue/dequeue conflict on the empty queue.
            (Enqueue(_), Dequeue) | (Dequeue, Enqueue(_)) => false,
        }
    }

    fn oblivious_to(&self, a: &QueueOp, b: &QueueOp) -> bool {
        use QueueOp::*;
        match (a, b) {
            // Enqueue returns Ack regardless of state.
            (Enqueue(_), _) => true,
            // Front-observing operators are blind only to reads.
            (Dequeue | Peek | Len, Peek | Len) => true,
            (Dequeue | Peek | Len, Enqueue(_) | Dequeue) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    fn any_op() -> impl Strategy<Value = QueueOp> {
        prop_oneof![
            (-5i64..6).prop_map(QueueOp::Enqueue),
            Just(QueueOp::Dequeue),
            Just(QueueOp::Peek),
            Just(QueueOp::Len),
        ]
    }

    fn any_state() -> impl Strategy<Value = VecDeque<i64>> {
        proptest::collection::vec_deque(-5i64..6, 0..5)
    }

    #[test]
    fn fifo_order() {
        let dt = Queue;
        let s = dt.outcome_of_ops(
            &dt.initial_state(),
            [
                &QueueOp::Enqueue(1),
                &QueueOp::Enqueue(2),
                &QueueOp::Enqueue(3),
            ],
        );
        let (s, v1) = dt.apply(&s, &QueueOp::Dequeue);
        let (_, v2) = dt.apply(&s, &QueueOp::Dequeue);
        assert_eq!(v1, QueueValue::Item(Some(1)));
        assert_eq!(v2, QueueValue::Item(Some(2)));
    }

    #[test]
    fn dequeue_empty_returns_none() {
        let dt = Queue;
        let (s, v) = dt.apply(&dt.initial_state(), &QueueOp::Dequeue);
        assert_eq!(v, QueueValue::Item(None));
        assert!(s.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let dt = Queue;
        let (s, _) = dt.apply(&dt.initial_state(), &QueueOp::Enqueue(9));
        let (s2, v) = dt.apply(&s, &QueueOp::Peek);
        assert_eq!(v, QueueValue::Item(Some(9)));
        assert_eq!(s2, s);
    }

    #[test]
    fn enqueue_dequeue_conflict_on_empty() {
        // The state-based counterexample behind the spec's `false`.
        let dt = Queue;
        assert!(!commutes_at(
            &dt,
            &VecDeque::new(),
            &QueueOp::Enqueue(1),
            &QueueOp::Dequeue
        ));
        assert!(!dt.commutes(&QueueOp::Enqueue(1), &QueueOp::Dequeue));
    }

    #[test]
    fn dequeues_commute_on_state_not_value() {
        let dt = Queue;
        assert!(dt.commutes(&QueueOp::Dequeue, &QueueOp::Dequeue));
        assert!(!dt.independent(&QueueOp::Dequeue, &QueueOp::Dequeue));
    }

    proptest! {
        /// Soundness: the static spec may only claim what brute force
        /// confirms on every sampled state (Lemmas 10.6/10.7 rely on this).
        #[test]
        fn spec_sound(a in any_op(), b in any_op(), s in any_state()) {
            let dt = Queue;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b));
            }
        }

        #[test]
        fn len_counts_members(items in proptest::collection::vec(-5i64..6, 0..8)) {
            let dt = Queue;
            let ops: Vec<QueueOp> = items.iter().map(|x| QueueOp::Enqueue(*x)).collect();
            let s = dt.outcome_of_ops(&dt.initial_state(), ops.iter());
            let (_, v) = dt.apply(&s, &QueueOp::Len);
            prop_assert_eq!(v, QueueValue::Size(items.len() as u64));
        }
    }
}

//! An integer read/write register — the smallest interesting serial data
//! type, and the canonical *non-commuting* one (two writes conflict).

use esds_core::{CommutativitySpec, SerialDataType};
use serde::{Deserialize, Serialize};

/// A read/write register over `i64` with initial value `0`.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{Register, RegisterOp, RegisterValue};
///
/// let dt = Register;
/// let s0 = dt.initial_state();
/// let (s1, v) = dt.apply(&s0, &RegisterOp::Write(7));
/// assert_eq!(v, RegisterValue::Ack);
/// let (_, v) = dt.apply(&s1, &RegisterOp::Read);
/// assert_eq!(v, RegisterValue::Value(7));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Register;

/// Operators of [`Register`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RegisterOp {
    /// Overwrite the register.
    Write(i64),
    /// Return the current value.
    Read,
}

/// Values reported by [`Register`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RegisterValue {
    /// Acknowledgement of a write (state-independent, so writes are
    /// oblivious to everything).
    Ack,
    /// The value observed by a read.
    Value(i64),
}

impl SerialDataType for Register {
    type State = i64;
    type Operator = RegisterOp;
    type Value = RegisterValue;

    fn initial_state(&self) -> i64 {
        0
    }

    fn apply(&self, s: &i64, op: &RegisterOp) -> (i64, RegisterValue) {
        match op {
            RegisterOp::Write(v) => (*v, RegisterValue::Ack),
            RegisterOp::Read => (*s, RegisterValue::Value(*s)),
        }
    }
}

impl CommutativitySpec for Register {
    fn commutes(&self, a: &RegisterOp, b: &RegisterOp) -> bool {
        match (a, b) {
            // Reads never change state.
            (RegisterOp::Read, _) | (_, RegisterOp::Read) => true,
            // Writes commute only when they write the same value.
            (RegisterOp::Write(x), RegisterOp::Write(y)) => x == y,
        }
    }

    fn oblivious_to(&self, a: &RegisterOp, b: &RegisterOp) -> bool {
        match (a, b) {
            // A write acknowledges regardless of state.
            (RegisterOp::Write(_), _) => true,
            // A read is oblivious to another read, but not to a write
            // (unless it happens to write the current value — state-
            // dependent, so we must say no).
            (RegisterOp::Read, RegisterOp::Read) => true,
            (RegisterOp::Read, RegisterOp::Write(_)) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    fn any_op() -> impl Strategy<Value = RegisterOp> {
        prop_oneof![
            (-5i64..5).prop_map(RegisterOp::Write),
            Just(RegisterOp::Read),
        ]
    }

    #[test]
    fn write_then_read() {
        let dt = Register;
        let (s, _) = dt.apply(&dt.initial_state(), &RegisterOp::Write(3));
        assert_eq!(dt.apply(&s, &RegisterOp::Read).1, RegisterValue::Value(3));
    }

    #[test]
    fn conflicting_writes_do_not_commute() {
        let dt = Register;
        assert!(!dt.commutes(&RegisterOp::Write(1), &RegisterOp::Write(2)));
        assert!(dt.commutes(&RegisterOp::Write(1), &RegisterOp::Write(1)));
    }

    proptest! {
        /// Soundness of the spec: whenever the spec says two operators
        /// commute (or are oblivious), brute force agrees on every sampled
        /// state.
        #[test]
        fn spec_sound(a in any_op(), b in any_op(), state in -10i64..10) {
            let dt = Register;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &state, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &state, &a, &b));
            }
            if dt.independent(&a, &b) {
                prop_assert!(commutes_at(&dt, &state, &a, &b));
                prop_assert!(oblivious_at(&dt, &state, &a, &b));
                prop_assert!(oblivious_at(&dt, &state, &b, &a));
            }
        }
    }
}

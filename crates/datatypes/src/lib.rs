//! # esds-datatypes
//!
//! Ready-made serial data types (paper §2.2) for the eventually-serializable
//! data service, each with a sound [`esds_core::CommutativitySpec`] so the
//! commutativity-exploiting algorithm variant (paper §10.3) can be used:
//!
//! * [`Register`] — read/write register (writes conflict);
//! * [`Counter`] — increment/double/read (the paper's §10.3 example);
//! * [`Directory`] — name/attribute directory service (the paper's §11.2
//!   motivating application);
//! * [`GSet`] — grow-only set (fully commutative mutations);
//! * [`AppendLog`] — append-only log (no mutations commute);
//! * [`KvStore`] — key-value store (per-key conflicts);
//! * [`Queue`] — FIFO queue (strongly non-commutative);
//! * [`Bank`] — bank account (commuting deposits, admission-controlled
//!   withdrawals — the motivating case for `strict`).
//!
//! Every specification is validated against brute force on random states by
//! property tests in each module.
//!
//! The keyed types — [`KvStore`] (by key), [`Directory`] (by name), and
//! [`Bank`] (one indivisible key) — also implement
//! [`esds_core::KeyedDataType`], so they can be hash-partitioned across
//! independent replica groups by the sharded layers in `esds-harness` and
//! `esds-runtime`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bank;
mod counter;
mod directory;
mod gset;
mod kv;
mod log;
mod queue;
mod register;

pub use bank::{Bank, BankOp, BankValue};
pub use counter::{Counter, CounterOp, CounterValue};
pub use directory::{Directory, DirectoryOp, DirectoryState, DirectoryValue};
pub use gset::{GSet, GSetOp, GSetValue};
pub use kv::{KvOp, KvStore, KvValue};
pub use log::{AppendLog, LogOp, LogValue};
pub use queue::{Queue, QueueOp, QueueValue};
pub use register::{Register, RegisterOp, RegisterValue};

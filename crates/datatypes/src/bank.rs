//! A bank account — the classic motivation for mixing strict and
//! nonstrict operations on one object.
//!
//! Deposits commute with each other and return no state-dependent value,
//! so they can be requested nonstrict and applied lazily. A withdrawal's
//! *admission decision* depends on the balance: issuing it `strict` makes
//! the decision final (consistent with the eventual total order, Theorem
//! 5.8), which is exactly the "stronger ordering constraints when
//! causality is insufficient" case of paper §1.2. `examples/bank_atm.rs`
//! drives this type end to end.

use esds_core::{CommutativitySpec, KeyedDataType, SerialDataType};
use serde::{Deserialize, Serialize};

/// A non-negative account balance (in cents), initially `0`.
///
/// Withdrawals that would overdraw are rejected and leave the state
/// unchanged, so every reachable state is a valid balance.
///
/// # Examples
///
/// ```
/// use esds_core::SerialDataType;
/// use esds_datatypes::{Bank, BankOp, BankValue};
///
/// let dt = Bank;
/// let (s, _) = dt.apply(&dt.initial_state(), &BankOp::Deposit(100));
/// let (s, v) = dt.apply(&s, &BankOp::Withdraw(30));
/// assert_eq!(v, BankValue::Withdrawn(true));
/// let (_, v) = dt.apply(&s, &BankOp::Withdraw(1000));
/// assert_eq!(v, BankValue::Withdrawn(false)); // rejected, not overdrawn
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Bank;

/// Operators of [`Bank`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum BankOp {
    /// Add to the balance (returns [`BankValue::Ack`]).
    Deposit(u64),
    /// Subtract from the balance if sufficient funds exist; reports whether
    /// the withdrawal was admitted.
    Withdraw(u64),
    /// Return the current balance.
    Balance,
}

/// Values reported by [`Bank`] operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum BankValue {
    /// Acknowledgement of a deposit.
    Ack,
    /// Whether a withdrawal was admitted.
    Withdrawn(bool),
    /// The balance observed.
    Balance(u64),
}

impl SerialDataType for Bank {
    type State = u64;
    type Operator = BankOp;
    type Value = BankValue;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &BankOp) -> (u64, BankValue) {
        match op {
            BankOp::Deposit(a) => (s.saturating_add(*a), BankValue::Ack),
            BankOp::Withdraw(a) => {
                if s >= a {
                    (s - a, BankValue::Withdrawn(true))
                } else {
                    (*s, BankValue::Withdrawn(false))
                }
            }
            BankOp::Balance => (*s, BankValue::Balance(*s)),
        }
    }
}

impl CommutativitySpec for Bank {
    fn commutes(&self, a: &BankOp, b: &BankOp) -> bool {
        use BankOp::*;
        match (a, b) {
            (Balance, _) | (_, Balance) => true,
            // Addition commutes (saturation is order-independent too).
            (Deposit(_), Deposit(_)) => true,
            // Zero-amount operators are no-ops on the state.
            (Deposit(0), Withdraw(_)) | (Withdraw(_), Deposit(0)) => true,
            (Deposit(_), Withdraw(0)) | (Withdraw(0), Deposit(_)) => true,
            // A deposit can flip a withdrawal's admission decision.
            (Deposit(_), Withdraw(_)) | (Withdraw(_), Deposit(_)) => false,
            // Equal withdrawals: whichever runs first takes the funds; the
            // surviving state is the same in both orders.
            (Withdraw(x), Withdraw(y)) => x == y,
        }
    }

    fn oblivious_to(&self, a: &BankOp, b: &BankOp) -> bool {
        use BankOp::*;
        match (a, b) {
            // Deposits return Ack regardless of state.
            (Deposit(_), _) => true,
            // Withdraw(0) is always admitted.
            (Withdraw(0), _) => true,
            // A withdrawal's admission is blind to reads and no-ops only.
            (Withdraw(_), Balance | Deposit(0) | Withdraw(0)) => true,
            (Withdraw(_), Deposit(_) | Withdraw(_)) => false,
            // A balance read sees any real mutation.
            (Balance, Balance | Deposit(0) | Withdraw(0)) => true,
            (Balance, Deposit(_) | Withdraw(_)) => false,
        }
    }
}

/// A bank account is a single indivisible object — deposits and
/// withdrawals genuinely conflict on the one balance, so the keyspace has
/// exactly one key. Under sharding the whole account hashes to one home
/// group and never splits (the degenerate but correct case: a sharded
/// deployment of `Bank` is a one-account-per-service multi-tenant layout;
/// run one `Bank` service per account for more).
impl KeyedDataType for Bank {
    fn shard_key<'a>(&self, _op: &'a BankOp) -> Option<&'a str> {
        Some("account")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::{commutes_at, oblivious_at};
    use proptest::prelude::*;

    fn any_op() -> impl Strategy<Value = BankOp> {
        prop_oneof![
            (0u64..5).prop_map(BankOp::Deposit),
            (0u64..5).prop_map(BankOp::Withdraw),
            Just(BankOp::Balance),
        ]
    }

    #[test]
    fn deposit_then_withdraw() {
        let dt = Bank;
        let s = dt.outcome_of_ops(&0, [&BankOp::Deposit(50), &BankOp::Withdraw(20)]);
        assert_eq!(s, 30);
    }

    #[test]
    fn overdraft_rejected_not_applied() {
        let dt = Bank;
        let (s, v) = dt.apply(&10, &BankOp::Withdraw(25));
        assert_eq!(v, BankValue::Withdrawn(false));
        assert_eq!(s, 10);
    }

    #[test]
    fn admission_depends_on_order() {
        // The reorderable-response hazard that motivates strict withdraws:
        // withdraw(30) succeeds after the deposit but fails before it.
        let dt = Bank;
        let (_, v) = dt.apply(
            &dt.outcome_of_ops(&0, [&BankOp::Deposit(50)]),
            &BankOp::Withdraw(30),
        );
        assert_eq!(v, BankValue::Withdrawn(true));
        let (_, v) = dt.apply(&0, &BankOp::Withdraw(30));
        assert_eq!(v, BankValue::Withdrawn(false));
        assert!(!dt.commutes(&BankOp::Deposit(50), &BankOp::Withdraw(30)));
    }

    #[test]
    fn equal_withdrawals_commute_on_state() {
        let dt = Bank;
        assert!(dt.commutes(&BankOp::Withdraw(2), &BankOp::Withdraw(2)));
        // ... but not on values: only one is admitted when funds are short.
        assert!(!dt.independent(&BankOp::Withdraw(2), &BankOp::Withdraw(2)));
        // From 3: w(2);w(3) leaves 1 (second rejected) but w(3);w(2)
        // leaves 0 (first rejected) — unequal withdrawals truly conflict.
        assert!(!commutes_at(
            &dt,
            &3,
            &BankOp::Withdraw(2),
            &BankOp::Withdraw(3)
        ));
    }

    #[test]
    fn deposits_independent() {
        let dt = Bank;
        assert!(dt.independent(&BankOp::Deposit(5), &BankOp::Deposit(9)));
    }

    proptest! {
        /// Soundness of the static spec against brute force on every
        /// sampled state.
        #[test]
        fn spec_sound(a in any_op(), b in any_op(), s in 0u64..10) {
            let dt = Bank;
            if dt.commutes(&a, &b) {
                prop_assert!(commutes_at(&dt, &s, &a, &b));
            }
            if dt.oblivious_to(&a, &b) {
                prop_assert!(oblivious_at(&dt, &s, &a, &b));
            }
        }

        /// Balances never go negative (u64 + rejection make this structural,
        /// but the property documents the data-type contract).
        #[test]
        fn no_overdraft(ops in proptest::collection::vec(any_op(), 0..20)) {
            let dt = Bank;
            let mut s = dt.initial_state();
            for op in &ops {
                let (ns, v) = dt.apply(&s, op);
                if let BankValue::Withdrawn(false) = v {
                    prop_assert_eq!(ns, s, "rejected withdrawal must not change state");
                }
                s = ns;
            }
        }
    }
}

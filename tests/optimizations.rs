//! Section 10 optimizations: each variant must deliver byte-identical
//! responses to the base algorithm under the same deterministic schedule,
//! while measurably doing less work (fewer recomputation applies, smaller
//! gossip).

use esds::datatypes::{Counter, CounterOp, GSet, GSetOp};
use esds::harness::{SimSystem, SystemConfig};
use esds::spec::check_converged;
use esds_alg::{GossipStrategy, ReplicaConfig, SafeSubmitter};
use esds_core::OpId;
use esds_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs the same seeded workload under a replica config; returns the
/// deduplicated (id → value) map and the final states.
fn run_counter(
    replica: ReplicaConfig,
    seed: u64,
) -> (
    std::collections::BTreeMap<OpId, esds::datatypes::CounterValue>,
    Vec<i64>,
    Vec<esds_alg::ReplicaStats>,
) {
    let cfg = SystemConfig::new(3).with_seed(seed).with_replica(replica);
    let mut sys = SimSystem::new(Counter, cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
    let mut last: Option<OpId> = None;
    for i in 0..30 {
        let c = clients[i % clients.len()];
        let op = if rng.gen_bool(0.5) {
            CounterOp::Increment(1)
        } else {
            CounterOp::Read
        };
        let prev: Vec<OpId> = if rng.gen_bool(0.3) {
            last.into_iter().collect()
        } else {
            Vec::new()
        };
        last = Some(sys.submit(c, op, &prev, rng.gen_bool(0.25)));
        sys.run_for(SimDuration::from_millis(7));
    }
    sys.run_until_quiescent();
    let responses = sys
        .responses_log()
        .iter()
        .map(|(id, v, _)| (*id, v.clone()))
        .collect();
    (responses, sys.replica_states(), sys.replica_stats())
}

#[test]
fn memoization_is_transparent_and_cheaper() {
    for seed in [1, 7, 23] {
        let (r_basic, s_basic, stats_basic) = run_counter(ReplicaConfig::basic(), seed);
        let (r_memo, s_memo, stats_memo) = run_counter(ReplicaConfig::default(), seed);
        assert_eq!(
            r_basic, r_memo,
            "seed {seed}: memoization changed responses"
        );
        assert_eq!(s_basic, s_memo);
        let applies_basic: u64 = stats_basic.iter().map(|s| s.response_applies).sum();
        let applies_memo: u64 = stats_memo.iter().map(|s| s.response_applies).sum();
        assert!(
            applies_memo < applies_basic,
            "seed {seed}: memoization did not reduce applies ({applies_memo} vs {applies_basic})"
        );
    }
}

#[test]
fn incremental_gossip_matches_full_and_sends_less() {
    // Fixed-delay channels are FIFO, the §10.4 requirement for incremental
    // gossip.
    for seed in [2, 9] {
        let (r_full, s_full, _) = run_counter(ReplicaConfig::default(), seed);
        let (r_inc, s_inc, _) = run_counter(
            ReplicaConfig::default().with_gossip(GossipStrategy::Incremental),
            seed,
        );
        assert_eq!(r_full, r_inc, "seed {seed}: incremental changed responses");
        assert_eq!(s_full, s_inc);
    }
    // Byte accounting (same workload, both to convergence).
    let bytes = |replica: ReplicaConfig| -> u64 {
        let cfg = SystemConfig::new(3).with_seed(4).with_replica(replica);
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        for _ in 0..20 {
            sys.submit(c, CounterOp::Increment(1), &[], false);
            sys.run_for(SimDuration::from_millis(10));
        }
        sys.run_until_quiescent();
        sys.gossip_traffic().1
    };
    let full = bytes(ReplicaConfig::default());
    let inc = bytes(ReplicaConfig::default().with_gossip(GossipStrategy::Incremental));
    assert!(
        inc * 2 < full,
        "incremental should cut gossip bytes at least in half: {inc} vs {full}"
    );
}

#[test]
fn gc_gossip_matches_full_and_sends_less() {
    for seed in [5, 12] {
        let (r_full, s_full, _) = run_counter(ReplicaConfig::default(), seed);
        let (r_gc, s_gc, _) = run_counter(ReplicaConfig::default().with_gc(), seed);
        assert_eq!(r_full, r_gc, "seed {seed}: GC changed responses");
        assert_eq!(s_full, s_gc);
    }
}

#[test]
fn commute_variant_matches_on_safeusers_workload() {
    let run = |replica: ReplicaConfig| {
        let cfg = SystemConfig::new(3).with_seed(6).with_replica(replica);
        let mut sys = SimSystem::new(GSet, cfg);
        let mut safe = SafeSubmitter::new(GSet);
        let mut rng = SmallRng::seed_from_u64(88);
        let clients: Vec<_> = (0..2).map(|i| sys.add_client(i)).collect();
        for i in 0..40u64 {
            let c = clients[(i % 2) as usize];
            let op = if rng.gen_bool(0.4) {
                GSetOp::Contains(rng.gen_range(0..10))
            } else {
                GSetOp::Add(rng.gen_range(0..10))
            };
            let prev = safe.prev_for(&op);
            let strict = i % 6 == 0;
            let id = sys.submit(
                c,
                op.clone(),
                &prev.iter().copied().collect::<Vec<_>>(),
                strict,
            );
            safe.record_with_prev(id, op, prev);
            sys.run_for(SimDuration::from_millis(5));
        }
        sys.run_until_quiescent();
        let responses: std::collections::BTreeMap<_, _> = sys
            .responses_log()
            .iter()
            .map(|(id, v, _)| (*id, v.clone()))
            .collect();
        (responses, sys.replica_states(), sys.replica_stats())
    };
    let (r_std, s_std, _) = run(ReplicaConfig::default());
    let (r_com, s_com, stats_com) = run(ReplicaConfig::commute());
    assert_eq!(r_std, r_com, "Commute changed responses under SafeUsers");
    assert_eq!(s_std, s_com);
    // The Commute variant never recomputes responses from history.
    let recompute: u64 = stats_com.iter().map(|s| s.response_applies).sum();
    assert_eq!(recompute, 0, "Commute must answer from cs_r / memo only");
}

#[test]
fn broadcast_gossip_converges_with_fewer_messages() {
    let run = |broadcast: bool| -> (u64, Vec<i64>) {
        let mut cfg = SystemConfig::new(4).with_seed(10);
        cfg.broadcast_gossip = broadcast;
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        for _ in 0..15 {
            sys.submit(c, CounterOp::Increment(1), &[], false);
            sys.run_for(SimDuration::from_millis(8));
        }
        sys.run_until_quiescent();
        check_converged(&sys.local_orders(), &sys.replica_states()).expect("converged");
        (sys.gossip_traffic().0, sys.replica_states())
    };
    let (msgs_unicast, s_u) = run(false);
    let (msgs_broadcast, s_b) = run(true);
    assert_eq!(s_u, s_b);
    assert!(
        msgs_broadcast * 2 <= msgs_unicast,
        "broadcast should construct ~1/(n-1) of the messages: {msgs_broadcast} vs {msgs_unicast}"
    );
}

//! The threaded runtime drives the same replica state machines over real
//! OS threads and crossbeam channels; smoke-level checks that the
//! behaviour matches the simulator's.

use std::time::Duration;

use esds::datatypes::{Counter, CounterOp, CounterValue, KvOp, KvStore, KvValue};
use esds::runtime::{RuntimeConfig, RuntimeService};

#[test]
fn counter_convergence_across_threads() {
    let mut svc = RuntimeService::start(Counter, RuntimeConfig::new(3));
    let mut c0 = svc.client();
    let mut c1 = svc.client();

    let mut pending0 = Vec::new();
    let mut pending1 = Vec::new();
    for _ in 0..8 {
        pending0.push(c0.submit(CounterOp::Increment(1), &[], false));
        pending1.push(c1.submit(CounterOp::Increment(2), &[], false));
    }
    for id in &pending0 {
        assert!(c0.await_response(*id, Duration::from_secs(20)).is_some());
    }
    for id in &pending1 {
        assert!(c1.await_response(*id, Duration::from_secs(20)).is_some());
    }

    // A strict audit read constrained after every increment observes all
    // 8·1 + 8·2 = 24 (prev pins the increments before it in the eventual
    // total order; strictness makes the response final).
    let prev: Vec<_> = pending0.iter().chain(&pending1).copied().collect();
    let audit = c0.submit(CounterOp::Read, &prev, true);
    assert_eq!(
        c0.await_response(audit, Duration::from_secs(30)),
        Some(CounterValue::Count(24))
    );

    let reps = svc.shutdown();
    let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
    assert!(
        states.iter().all(|s| *s == 24),
        "states diverged: {states:?}"
    );
}

#[test]
fn prev_constraints_hold_across_threads() {
    let mut svc = RuntimeService::start(KvStore, RuntimeConfig::new(2));
    let mut c = svc.client();
    let put = c.submit(KvOp::put("user", "alice"), &[], false);
    let get = c.submit(KvOp::get("user"), &[put], false);
    assert_eq!(
        c.await_response(get, Duration::from_secs(20)),
        Some(KvValue::Value(Some("alice".to_string())))
    );
    svc.shutdown();
}

#[test]
fn single_replica_runtime() {
    // n = 1: done ⇒ stable everywhere; strict ops answer immediately.
    let mut svc = RuntimeService::start(Counter, RuntimeConfig::new(1));
    let mut c = svc.client();
    let inc = c.submit(CounterOp::Increment(3), &[], true);
    assert_eq!(
        c.await_response(inc, Duration::from_secs(10)),
        Some(CounterValue::Ack)
    );
    let read = c.submit(CounterOp::Read, &[], true);
    assert_eq!(
        c.await_response(read, Duration::from_secs(10)),
        Some(CounterValue::Count(3))
    );
    svc.shutdown();
}

//! The Sections 4/7/8/10 invariants evaluated over every state of
//! randomized executions, including executions with message duplication
//! and reordering (loss is exercised in `faults.rs`; crash-recovery
//! intentionally violates Invariant 7.4's knowledge assumptions and is
//! validated by behavioural checks instead).

use esds::datatypes::{Counter, CounterOp};
use esds::harness::{SimSystem, SystemConfig};
use esds_alg::{check_all, MonotonicityChecker, ReplicaConfig};
use esds_core::OpId;
use esds_sim::{ChannelConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_with_invariant_checks(cfg: SystemConfig, seed: u64, ops: usize) {
    let mut sys = SimSystem::new(Counter, cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
    let mut last: Option<OpId> = None;
    for i in 0..ops {
        let c = clients[i % clients.len()];
        let op = if rng.gen_bool(0.6) {
            CounterOp::Increment(1)
        } else {
            CounterOp::Read
        };
        let prev: Vec<OpId> = if rng.gen_bool(0.35) {
            last.into_iter().collect()
        } else {
            Vec::new()
        };
        last = Some(sys.submit(c, op, &prev, rng.gen_bool(0.2)));
    }

    let mut mono = MonotonicityChecker::new();
    let mut idle = 0u32;
    for _ in 0..500_000u64 {
        let Some((_, report)) = sys.step_one() else {
            break;
        };
        let view = sys.view().expect("no crashes");
        let violations = check_all(&view);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let mv = mono.observe(&view);
        assert!(mv.is_empty(), "seed {seed}: {mv:?}");
        if sys.is_converged() && report.is_trivial() {
            idle += 1;
            if idle > 3 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert!(sys.is_converged(), "seed {seed} did not converge");
}

#[test]
fn invariants_hold_fixed_channels() {
    for seed in 0..4 {
        let cfg = SystemConfig::new(3)
            .with_seed(seed)
            .with_replica(ReplicaConfig::default().with_witness())
            .with_tracking();
        run_with_invariant_checks(cfg, seed, 12);
    }
}

#[test]
fn invariants_hold_reordering_channels() {
    let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(10));
    let cfg = SystemConfig::new(3)
        .with_seed(77)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_channels(ch, ch)
        .with_tracking();
    run_with_invariant_checks(cfg, 77, 12);
}

#[test]
fn invariants_hold_duplicating_channels() {
    let ch = ChannelConfig::fixed(SimDuration::from_millis(4)).with_dup(0.4);
    let cfg = SystemConfig::new(3)
        .with_seed(15)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_channels(ch, ch)
        .with_tracking();
    run_with_invariant_checks(cfg, 15, 10);
}

#[test]
fn invariants_hold_without_memoization() {
    let cfg = SystemConfig::new(4)
        .with_seed(3)
        .with_replica(ReplicaConfig::basic().with_witness())
        .with_tracking();
    run_with_invariant_checks(cfg, 3, 12);
}

#[test]
fn invariants_hold_two_replicas() {
    let cfg = SystemConfig::new(2)
        .with_seed(9)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_tracking();
    run_with_invariant_checks(cfg, 9, 14);
}

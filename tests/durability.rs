//! Durability of the **threaded shard cluster**: every replica of every
//! shard writes a WAL + stable-prefix snapshots through `esds-store`,
//! the whole deployment is killed abruptly (`kill -9` analogue — no
//! flush, no checkpoint, in-flight operations cut wherever they
//! happen to be), restarted from the on-disk images, and the joined
//! pre-/post-crash history is audited per shard with the
//! [`StreamingChecker`]:
//!
//! * **recover ⊇ answered** — every operation answered before the kill
//!   is present in the recovered eventual order (sync-before-release:
//!   a response is only released after its effects are on disk);
//! * **no answered strict response contradicted** — a strict read
//!   re-issued after the restart returns exactly the value the
//!   pre-kill strict read witnessed (the stable prefix is final,
//!   Theorem 5.8, and recovery preserved it);
//! * the per-shard audit certificate covers the *entire* recovered
//!   order — pre-crash survivors and post-restart operations explained
//!   by one serialization each.
//!
//! A second test runs the `ESDS-II` conformance observer over a fully
//! durable simulated system: appending and checkpointing on the hot
//! path must not change a single observable protocol action.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Duration;

use esds::alg::{Persistence, Replica, ReplicaConfig};
use esds::core::{OpDescriptor, OpId, ReplicaId, ShardedOpId};
use esds::datatypes::{Counter, CounterOp, KvOp, KvStore, KvValue};
use esds::harness::{ConformanceObserver, SimSystem, SystemConfig};
use esds::runtime::{RuntimeConfig, ShardedClient, ShardedService};
use esds::spec::{check_converged, StreamingChecker};
use esds::store::{DurableConfig, DurableStore, FileStorage, MemStorage, Storage};

const N_SHARDS: usize = 2;
const N_REPLICAS: usize = 3;
const WAIT: Duration = Duration::from_secs(60);

/// Opens (or recovers) the durable backends of one shard's replica
/// group. `expect_recovered` pins whether the directories must be
/// fresh (first boot) or must contain a recoverable image (restart).
fn open_group(
    root: &Path,
    shard: usize,
    expect_recovered: bool,
) -> Vec<(Replica<KvStore>, Box<dyn Persistence<KvStore>>)> {
    (0..N_REPLICAS)
        .map(|r| {
            let dir = root.join(format!("shard{shard}")).join(format!("rep{r}"));
            std::fs::create_dir_all(&dir).expect("create WAL directory");
            let storage = FileStorage::open(&dir).expect("open WAL directory");
            let (store, rep, report) = DurableStore::open(
                KvStore,
                storage,
                ReplicaId(r as u32),
                N_REPLICAS,
                ReplicaConfig::default(),
                DurableConfig {
                    snapshot_every: Some(16),
                },
            )
            .expect("open durable store");
            assert_eq!(
                report.recovered, expect_recovered,
                "shard {shard} replica {r}: {report}"
            );
            (rep, Box::new(store) as Box<dyn Persistence<KvStore>>)
        })
        .collect()
}

fn durable_runtime_config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(N_REPLICAS);
    cfg.replica = ReplicaConfig::default().with_durable();
    cfg
}

/// The audit's client-side view of one submission, resolved to the
/// owning shard's local identities at submission time (the §10.1 memo
/// may prune stable descriptors from the final replicas, so the test
/// carries its own copy of every descriptor it created).
struct Sub {
    shard: usize,
    desc: OpDescriptor<KvOp>,
}

fn log_sub(
    subs: &mut Vec<Sub>,
    client: &ShardedClient<KvStore>,
    gid: ShardedOpId,
    op: KvOp,
    prev: &[ShardedOpId],
    strict: bool,
) {
    let shard = client.shard_of(gid).expect("routed") as usize;
    let local = client.local_id(gid).expect("submitted");
    // This workload only chains same-key (hence same-shard) `prev`, so
    // the group-local constraint set is the direct translation.
    let local_prev: Vec<OpId> = prev
        .iter()
        .map(|g| client.local_id(*g).expect("prev submitted"))
        .collect();
    let mut desc = OpDescriptor::new(local, op).with_prev(local_prev);
    desc.strict = strict;
    subs.push(Sub { shard, desc });
}

#[test]
fn shard_cluster_killed_mid_workload_recovers_from_disk() {
    let root: PathBuf =
        std::env::temp_dir().join(format!("esds-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ---- Phase 1: a durable cluster absorbs an answered prefix. ----
    let groups = (0..N_SHARDS).map(|s| open_group(&root, s, false)).collect();
    let mut svc = ShardedService::start_durable(KvStore, durable_runtime_config(), groups);
    let mut pre = svc.client();

    let mut subs: Vec<Sub> = Vec::new();
    // Per-shard response log for the audit: (local id, value).
    let mut responses: Vec<Vec<(OpId, KvValue)>> = vec![Vec::new(); N_SHARDS];

    // 24 chained writes/reads over 8 keys, a strict op every fifth.
    let keys: Vec<String> = (0..8).map(|k| format!("a{k}")).collect();
    let mut last_on_key: BTreeMap<String, ShardedOpId> = BTreeMap::new();
    let mut answered: Vec<ShardedOpId> = Vec::new();
    for i in 0..24u64 {
        let key = &keys[(i % 8) as usize];
        let op = if i % 3 == 2 {
            KvOp::get(key)
        } else {
            KvOp::put(key, format!("A{i}"))
        };
        let prev: Vec<ShardedOpId> = last_on_key.get(key).copied().into_iter().collect();
        let strict = i % 5 == 0;
        let gid = pre.submit(op.clone(), &prev, strict);
        log_sub(&mut subs, &pre, gid, op, &prev, strict);
        last_on_key.insert(key.clone(), gid);
        answered.push(gid);
    }
    for gid in &answered {
        let v = pre
            .await_response(*gid, WAIT)
            .expect("answered before kill");
        let shard = pre.shard_of(*gid).expect("routed") as usize;
        responses[shard].push((pre.local_id(*gid).expect("submitted"), v));
    }
    // A strict read per key: its answer is final in the eventual total
    // order (Theorem 5.8) — the restart must not contradict it.
    let mut witnessed: BTreeMap<String, KvValue> = BTreeMap::new();
    for key in &keys {
        let op = KvOp::get(key);
        let prev: Vec<ShardedOpId> = last_on_key.get(key).copied().into_iter().collect();
        let gid = pre.submit(op.clone(), &prev, true);
        log_sub(&mut subs, &pre, gid, op, &prev, true);
        let v = pre.await_response(gid, WAIT).expect("strict read answered");
        let shard = pre.shard_of(gid).expect("routed") as usize;
        responses[shard].push((pre.local_id(gid).expect("submitted"), v.clone()));
        witnessed.insert(key.clone(), v);
    }
    let n_answered = subs.len();

    // ---- Kill -9 mid-chaos: 16 more operations are in flight (on a
    // disjoint key range) when the whole cluster dies. Whatever subset
    // reached a synced frame survives; nothing was answered, so any
    // cut is legal. ----
    for j in 0..16u64 {
        let op = KvOp::put(format!("b{}", j % 8), format!("B{j}"));
        let gid = pre.submit(op.clone(), &[], false);
        log_sub(&mut subs, &pre, gid, op, &[], false);
    }
    let n_inflight = subs.len() - n_answered;
    svc.kill();

    // ---- Phase 2: restart every replica from its on-disk image. ----
    let groups = (0..N_SHARDS).map(|s| open_group(&root, s, true)).collect();
    let mut svc = ShardedService::start_durable(KvStore, durable_runtime_config(), groups);
    let mut post = svc.client();

    // No answered strict response contradicted: the recovered cluster's
    // strict reads see exactly what the pre-kill strict reads witnessed
    // (phase-B traffic touched a disjoint key range).
    for key in &keys {
        let op = KvOp::get(key);
        let gid = post.submit(op.clone(), &[], true);
        log_sub(&mut subs, &post, gid, op, &[], true);
        let v = post
            .await_response(gid, WAIT)
            .expect("strict read after restart");
        assert_eq!(
            Some(&v),
            witnessed.get(key),
            "restart contradicted the answered strict read of {key}"
        );
        let shard = post.shard_of(gid).expect("routed") as usize;
        responses[shard].push((post.local_id(gid).expect("submitted"), v));
    }
    // Every shard must carry a post-restart strict op before shutdown:
    // a strict answer makes everything before it stable everywhere in
    // its group, so the shutdown below reads converged replicas. The
    // a-key reads above fence the shards they hashed to; probe extra
    // keys until the rest are covered too.
    let mut fenced: Vec<bool> = vec![false; N_SHARDS];
    for key in &keys {
        if let Some(s) = last_on_key.get(key).and_then(|gid| pre.shard_of(*gid)) {
            fenced[s as usize] = true;
        }
    }
    for j in 0..16u64 {
        if fenced.iter().all(|f| *f) {
            break;
        }
        let op = KvOp::get(format!("f{j}"));
        let gid = post.submit(op.clone(), &[], true);
        log_sub(&mut subs, &post, gid, op, &[], true);
        let v = post.await_response(gid, WAIT).expect("fence read answered");
        let shard = post.shard_of(gid).expect("routed") as usize;
        fenced[shard] = true;
        responses[shard].push((post.local_id(gid).expect("submitted"), v));
    }
    assert!(fenced.iter().all(|f| *f), "fence probes missed a shard");

    // ---- Audit: per shard, the recovered history is one serializable
    // story covering everything that survived. ----
    let final_reps = svc.shutdown();
    assert_eq!(final_reps.len(), N_SHARDS);
    let mut survivors = 0usize;
    for (s, reps) in final_reps.iter().enumerate() {
        let orders: Vec<Vec<OpId>> = reps.iter().map(|r| r.local_order()).collect();
        let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
        check_converged(&orders, &states)
            .unwrap_or_else(|e| panic!("shard {s} diverged after recovery: {e}"));

        // recover ⊇ answered: every answered operation of this shard is
        // in the recovered order.
        let order = &orders[0];
        let in_order: BTreeSet<OpId> = order.iter().copied().collect();
        for (local, _) in &responses[s] {
            assert!(
                in_order.contains(local),
                "shard {s}: answered {local} lost by the restart"
            );
        }

        // Streaming audit over the joined history: the requests that
        // survived the cut (in submission order — `prev` chains only
        // through the always-surviving answered prefix), every response
        // this test observed, then the stabilize stream; the
        // certificate must cover the whole recovered order.
        let mut chk = StreamingChecker::new(KvStore);
        for sub in subs.iter().filter(|u| u.shard == s) {
            if in_order.contains(&sub.desc.id) {
                chk.on_request(sub.desc.clone())
                    .unwrap_or_else(|e| panic!("shard {s}: {e}"));
            }
        }
        for (local, value) in &responses[s] {
            chk.on_response(*local, value.clone(), None)
                .unwrap_or_else(|e| panic!("shard {s}: {e}"));
        }
        for id in order {
            chk.on_stabilize(*id)
                .unwrap_or_else(|e| panic!("shard {s}: {e}"));
        }
        let cert = chk
            .finish()
            .unwrap_or_else(|v| panic!("shard {s} audit failed: {v}"));
        assert_eq!(cert.ops as usize, order.len());
        survivors += order.len();
    }
    // Everything answered survived; of the in-flight tail, whatever
    // subset the disk kept — never more than was submitted.
    let post_ops = subs.len() - n_answered - n_inflight;
    assert!(survivors >= n_answered + post_ops);
    assert!(survivors <= subs.len());

    let _ = std::fs::remove_dir_all(&root);
}

/// The `ESDS-II` conformance observer over a **fully durable** simulated
/// system: all three replicas append to a WAL and checkpoint through
/// the stable-prefix snapshot path while the observer replays every
/// simulation step against the specification automaton. Persistence is
/// pure bookkeeping below the protocol — it must not add, drop, or
/// reorder a single observable action.
#[test]
fn durable_replicas_conform_to_esds2() {
    let cfg = SystemConfig::new(3)
        .with_seed(77)
        .with_replica(ReplicaConfig::default().with_witness().with_durable())
        .with_tracking();
    let mut sys = SimSystem::new(Counter, cfg);
    let mut disks = Vec::new();
    for r in 0..3 {
        let disk = MemStorage::new();
        let (store, _fresh, report) = DurableStore::open(
            Counter,
            disk.clone(),
            ReplicaId(r as u32),
            3,
            ReplicaConfig::default(),
            DurableConfig {
                snapshot_every: Some(4),
            },
        )
        .expect("fresh open");
        assert!(!report.recovered);
        sys.install_persistence(r, Box::new(store));
        disks.push(disk);
    }

    let clients: Vec<_> = (0..2).map(|i| sys.add_client(i)).collect();
    let mut last: Option<OpId> = None;
    let total = 16usize;
    for i in 0..total {
        let op = if i % 3 == 0 {
            CounterOp::Read
        } else {
            CounterOp::Increment(1)
        };
        let prev: Vec<OpId> = if i % 4 == 1 {
            last.into_iter().collect()
        } else {
            Vec::new()
        };
        last = Some(sys.submit(clients[i % 2], op, &prev, i % 5 == 0));
    }

    let mut obs = ConformanceObserver::new(Counter);
    let mut idle = 0u32;
    for _ in 0..1_000_000u64 {
        let Some((_, report)) = sys.step_one() else {
            break;
        };
        let view = sys.view().expect("no crashes in this test");
        obs.observe(&report, &view)
            .expect("durable replica violated ESDS-II conformance");
        if sys.is_converged() && report.is_trivial() {
            idle += 1;
            if idle > 5 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert_eq!(obs.spec().ops().len(), total, "all ops entered the spec");
    assert_eq!(obs.spec().stabilized().len(), total, "all ops stabilized");

    // The durable plane actually ran: every replica appended WAL frames
    // and compacted at least once (snapshot_every = 4 over 16 ops'
    // admit + label records).
    for (r, disk) in disks.iter().enumerate() {
        let files = disk.list().expect("list");
        assert!(
            files.iter().any(|f| f.starts_with("wal-")),
            "replica {r} never appended: {files:?}"
        );
        assert!(
            files.iter().any(|f| f.starts_with("snap-")),
            "replica {r} never checkpointed: {files:?}"
        );
    }
}

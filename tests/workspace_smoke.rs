//! Workspace bootstrap smoke test: drives the `esds` facade re-exports
//! end-to-end — a 3-replica simulated service takes strict and nonstrict
//! operations, reaches quiescence, and answers with serializable values.

use esds::core::{OpDescriptor, OpId};
use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{SimSystem, SystemConfig};

#[test]
fn facade_three_replica_counter_end_to_end() {
    let config = SystemConfig::new(3).with_seed(42);
    let mut sys = SimSystem::new(Counter, config);
    let client = sys.add_client(0);

    // A strict increment, a nonstrict increment, then a strict read
    // constrained after both — the read must observe 5 + 2 = 7.
    let a = sys.submit(client, CounterOp::Increment(5), &[], true);
    let b = sys.submit(client, CounterOp::Increment(2), &[a], false);
    let read = sys.submit(client, CounterOp::Read, &[a, b], true);
    sys.run_until_quiescent();

    assert_eq!(sys.completed_count(), 3, "all three operations answered");
    assert_eq!(sys.response(a), Some(&CounterValue::Ack));
    assert_eq!(sys.response(b), Some(&CounterValue::Ack));
    assert_eq!(sys.response(read), Some(&CounterValue::Count(7)));

    // Quiescence means every replica converged to the same total order.
    assert!(sys.is_converged(), "replicas converged after quiescence");
    let orders = sys.local_orders();
    assert_eq!(orders.len(), 3);
    assert!(
        orders.windows(2).all(|w| w[0] == w[1]),
        "replicas disagree on the stable order: {orders:?}"
    );
}

#[test]
fn facade_reexports_compose_across_crates() {
    // Types from different re-exported crates interoperate: a core
    // descriptor built by hand matches what the harness records.
    let config = SystemConfig::new(2).with_seed(7);
    let mut sys = SimSystem::new(Counter, config);
    let client = sys.add_client(1);
    let id = sys.submit(client, CounterOp::Increment(1), &[], false);
    sys.run_until_quiescent();

    let requested = sys.requested();
    let desc: &OpDescriptor<CounterOp> = &requested[&id];
    assert_eq!(desc.id, id);
    let _typed: OpId = desc.id;

    // The sim and alg layers are visible through the facade as well.
    let now: esds::sim::SimTime = sys.now();
    assert!(now > esds::sim::SimTime::ZERO, "virtual time advanced");
}

//! Domain scenario: the distributed directory service of paper §11.2,
//! exercising the create-then-initialize idiom, query-dominated load, and
//! transient-inconsistency semantics end to end.

use esds::datatypes::{Directory, DirectoryOp, DirectoryValue};
use esds::harness::{apply_open_loop, DirectorySource, OpenLoopWorkload, SimSystem, SystemConfig};
use esds::spec::check_converged;
use esds_core::OpId;
use esds_sim::{SimDuration, SimTime};

#[test]
fn create_then_initialize_idiom() {
    let mut sys = SimSystem::new(Directory, SystemConfig::new(4).with_seed(1));
    let admin = sys.add_client(0);
    let user = sys.add_client(2);

    // §11.2: "this can be accomplished by including the identifier of the
    // name creation operation in the prev sets of the attribute creation
    // and initialization operations."
    let create = sys.submit(admin, DirectoryOp::create("mail"), &[], false);
    let set_a = sys.submit(
        admin,
        DirectoryOp::set_attr("mail", "addr", "10.0.0.9"),
        &[create],
        false,
    );
    let set_b = sys.submit(
        admin,
        DirectoryOp::set_attr("mail", "port", "25"),
        &[create],
        false,
    );
    // A user lookup constrained after both initializations.
    let lookup = sys.submit(
        user,
        DirectoryOp::lookup("mail", "port"),
        &[set_a, set_b],
        false,
    );
    sys.run_until_quiescent();

    assert_eq!(sys.response(create), Some(&DirectoryValue::Created(true)));
    assert_eq!(sys.response(set_a), Some(&DirectoryValue::AttrSet(true)));
    assert_eq!(sys.response(set_b), Some(&DirectoryValue::AttrSet(true)));
    assert_eq!(
        sys.response(lookup),
        Some(&DirectoryValue::Attr(Some("25".to_string())))
    );
}

#[test]
fn unconstrained_lookup_may_be_stale_but_never_wrong() {
    let mut sys = SimSystem::new(Directory, SystemConfig::new(3).with_seed(4));
    let admin = sys.add_client(0);
    let user = sys.add_client(1); // different replica

    let create = sys.submit(admin, DirectoryOp::create("www"), &[], false);
    let early = sys.submit(user, DirectoryOp::lookup("www", "addr"), &[], false);
    sys.run_until_quiescent();

    // Early lookup: either None (stale) or the attribute state after
    // creation — both are legal ESDS answers; anything else is not.
    match sys.response(early).expect("answered") {
        DirectoryValue::Attr(None) => {}
        other => panic!("impossible lookup result: {other:?}"),
    }
    assert_eq!(sys.response(create), Some(&DirectoryValue::Created(true)));
}

#[test]
fn query_dominated_workload_converges() {
    // The §11.2 access pattern: ~90% queries over a name universe, many
    // clients, several replicas.
    let cfg = SystemConfig::new(5).with_seed(8);
    let mut sys = SimSystem::new(Directory, cfg);
    let w = OpenLoopWorkload::new(5, 30, SimDuration::from_millis(8)).with_strict_fraction(0.05);
    let mut src = DirectorySource::new(0.9, 12, 3);
    let ids: Vec<OpId> = apply_open_loop(&mut sys, &w, &mut src);
    assert_eq!(ids.len(), 150);
    sys.run_until_converged(SimTime::from_millis(600_000))
        .expect("converged");
    assert_eq!(sys.completed_count(), 150);
    check_converged(&sys.local_orders(), &sys.replica_states()).expect("converged");
}

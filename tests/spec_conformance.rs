//! The Theorem 8.4 simulation relation, exercised end-to-end: every
//! simulator event of the algorithm is replayed against the `ESDS-II`
//! specification automaton with full precondition checking (the paper's
//! proof obligations), across seeds, workloads, and channel behaviours.

use esds::datatypes::{Counter, CounterOp, Register, RegisterOp};
use esds::harness::{ConformanceObserver, SimSystem, SystemConfig};
use esds_alg::{RelayPolicy, ReplicaConfig};
use esds_core::{OpId, SerialDataType};
use esds_sim::{ChannelConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs a system to convergence under the observer; panics on any
/// conformance violation.
fn observe_to_convergence<T>(
    mut sys: SimSystem<T>,
    dt: T,
    expected_ops: usize,
) -> ConformanceObserver<T>
where
    T: SerialDataType + Clone,
{
    let mut obs = ConformanceObserver::new(dt);
    let mut idle = 0u32;
    for _ in 0..1_000_000u64 {
        let Some((_, report)) = sys.step_one() else {
            break;
        };
        let view = sys.view().expect("no crashes here");
        obs.observe(&report, &view).expect("conformance violated");
        if sys.is_converged() && report.is_trivial() {
            idle += 1;
            if idle > 5 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert_eq!(obs.spec().ops().len(), expected_ops, "all ops entered");
    assert_eq!(
        obs.spec().stabilized().len(),
        expected_ops,
        "all ops stabilized"
    );
    obs
}

fn conformance_config(seed: u64, n: usize) -> SystemConfig {
    SystemConfig::new(n)
        .with_seed(seed)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_tracking()
}

#[test]
fn random_counter_workloads_conform() {
    for seed in 0..5 {
        let mut sys = SimSystem::new(Counter, conformance_config(seed, 3));
        let mut rng = SmallRng::seed_from_u64(seed);
        let clients: Vec<_> = (0..2).map(|i| sys.add_client(i)).collect();
        let mut last: Option<OpId> = None;
        let total = 14;
        for i in 0..total {
            let c = clients[i % clients.len()];
            let op = if rng.gen_bool(0.5) {
                CounterOp::Increment(1)
            } else {
                CounterOp::Read
            };
            let prev: Vec<OpId> = if rng.gen_bool(0.3) {
                last.into_iter().collect()
            } else {
                Vec::new()
            };
            last = Some(sys.submit(c, op, &prev, rng.gen_bool(0.3)));
        }
        observe_to_convergence(sys, Counter, total);
    }
}

#[test]
fn reordering_channels_conform() {
    // Uniform delays reorder messages; the simulation relation must hold
    // regardless (the algorithm makes no FIFO assumption).
    let cfg = conformance_config(33, 3).with_channels(
        ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(12)),
        ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(12)),
    );
    let mut sys = SimSystem::new(Register, cfg);
    let a = sys.add_client(0);
    let b = sys.add_client(1);
    let mut ids = Vec::new();
    for i in 0..8i64 {
        ids.push(sys.submit(a, RegisterOp::Write(i), &[], false));
        sys.submit(b, RegisterOp::Read, &[], i % 2 == 0);
    }
    observe_to_convergence(sys, Register, 16);
}

#[test]
fn round_robin_relay_conforms() {
    let cfg = conformance_config(7, 4).with_relay(RelayPolicy::RoundRobin);
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    let mut last = None;
    for i in 0..12u64 {
        let prev: Vec<OpId> = if i % 2 == 1 {
            last.into_iter().collect()
        } else {
            vec![]
        };
        last = Some(sys.submit(c, CounterOp::Increment(1), &prev, i % 5 == 0));
    }
    observe_to_convergence(sys, Counter, 12);
}

#[test]
fn duplicate_deliveries_conform() {
    // Duplicated channels re-deliver requests and gossip; the spec allows
    // repeated enter/calculate, so conformance must survive.
    let dup = ChannelConfig::fixed(SimDuration::from_millis(4)).with_dup(0.5);
    let cfg = conformance_config(21, 3).with_channels(dup, dup);
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    for i in 0..10u64 {
        sys.submit(c, CounterOp::Increment(1), &[], i % 3 == 0);
    }
    observe_to_convergence(sys, Counter, 10);
}

//! Property-based whole-system tests: for arbitrary workload shapes,
//! channel parameters, and seeds, the service converges, respects the
//! client-specified constraints, and explains every response.

use esds::core::OpId;
use esds::datatypes::{Counter, CounterOp};
use esds::harness::{SimSystem, SystemConfig};
use esds::spec::{check_converged, TraceChecker};
use esds_alg::ReplicaConfig;
use esds_sim::{ChannelConfig, SimDuration, SimTime};
use proptest::prelude::*;

/// One scripted submission: which client, operator choice, strictness,
/// whether to depend on that client's previous op, and a pause afterwards.
#[derive(Clone, Debug)]
struct Step {
    client: usize,
    is_inc: bool,
    strict: bool,
    dep: bool,
    pause_ms: u64,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        0usize..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u64..25,
    )
        .prop_map(|(client, is_inc, strict, dep, pause_ms)| Step {
            client,
            is_inc,
            strict,
            dep,
            pause_ms,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The omnibus property: convergence + Theorem 5.7 + Theorem 5.8 for
    /// arbitrary schedules on reliable (possibly reordering) channels.
    #[test]
    fn system_is_eventually_serializable(
        steps in proptest::collection::vec(step_strategy(), 1..25),
        seed in 0u64..1000,
        n in 2usize..5,
        jitter_ms in 0u64..10,
    ) {
        let ch = if jitter_ms == 0 {
            ChannelConfig::fixed(SimDuration::from_millis(5))
        } else {
            ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(1 + jitter_ms))
        };
        let cfg = SystemConfig::new(n)
            .with_seed(seed)
            .with_replica(ReplicaConfig::default().with_witness())
            .with_channels(ch, ch);
        let mut sys = SimSystem::new(Counter, cfg);
        let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
        let mut last: Vec<Option<OpId>> = vec![None; 3];
        for s in &steps {
            let op = if s.is_inc { CounterOp::Increment(1) } else { CounterOp::Read };
            let prev: Vec<OpId> = if s.dep { last[s.client].into_iter().collect() } else { vec![] };
            let id = sys.submit(clients[s.client], op, &prev, s.strict);
            last[s.client] = Some(id);
            if s.pause_ms > 0 {
                sys.run_for(SimDuration::from_millis(s.pause_ms));
            }
        }
        let end = sys.run_until_converged(SimTime::from_millis(600_000));
        prop_assert!(end.is_ok(), "no convergence: {end:?}");

        // Convergence of orders and states.
        prop_assert!(check_converged(&sys.local_orders(), &sys.replica_states()).is_ok());

        // Every response explained; strict ones by the eventual order.
        let mut checker = TraceChecker::new(Counter);
        for d in sys.requested_in_order() {
            checker.on_request(d.clone()).expect("well-formed");
        }
        for (id, v, w) in sys.responses_log() {
            checker.on_response(*id, v.clone(), w.clone());
        }
        let v58 = checker.check_eventual_order(&sys.minlabel_order(), false);
        prop_assert!(v58.is_empty(), "{v58:?}");
        let (v57, skipped) = checker.check_witnessed_responses();
        prop_assert!(v57.is_empty(), "{v57:?}");
        prop_assert_eq!(skipped, 0);
    }

    /// Configuration matrix: every combination of the §10 optimization
    /// knobs (incremental gossip, gossip GC, memoization, broadcast) stays
    /// safe and live under duplicating — and, for full gossip, lossy —
    /// channels with front-end retries. Incremental gossip is only sound
    /// on reliable channels (the paper's §10.4 FIFO/reliability caveat),
    /// so loss is dropped for it.
    #[test]
    fn optimization_matrix_is_safe(
        seed in 0u64..400,
        incremental in any::<bool>(),
        gc in any::<bool>(),
        memo in any::<bool>(),
        broadcast in any::<bool>(),
        loss_pct in 0u32..25,
        dup_pct in 0u32..20,
    ) {
        let mut rc = if memo { ReplicaConfig::default() } else { ReplicaConfig::basic() };
        rc = rc.with_witness();
        // Broadcast sends one message to all peers, so per-peer incremental
        // state cannot apply (the harness rejects the combination).
        let incremental = incremental && !broadcast;
        if incremental {
            rc = rc.with_gossip(esds_alg::GossipStrategy::Incremental);
        }
        if gc {
            rc = rc.with_gc();
        }
        let loss = if incremental { 0.0 } else { f64::from(loss_pct) / 100.0 };
        let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(6))
            .with_loss(loss)
            .with_dup(f64::from(dup_pct) / 100.0);
        let mut cfg = SystemConfig::new(3)
            .with_seed(seed)
            .with_replica(rc)
            .with_channels(ch, ch)
            .with_retry(SimDuration::from_millis(30));
        cfg.broadcast_gossip = broadcast;
        let mut sys = SimSystem::new(Counter, cfg);
        let c0 = sys.add_client(0);
        let c1 = sys.add_client(1);
        let mut anchor = None;
        for i in 0..8u64 {
            let id = sys.submit(c0, CounterOp::Increment(1), &[], i == 7);
            if i == 3 {
                anchor = Some(id);
            }
            let prev: Vec<OpId> = anchor.into_iter().collect();
            sys.submit(c1, CounterOp::Read, &prev, false);
            sys.run_for(SimDuration::from_millis(7));
        }
        let end = sys.run_until_converged(SimTime::from_millis(600_000));
        prop_assert!(end.is_ok(), "no convergence: {end:?}");
        prop_assert!(check_converged(&sys.local_orders(), &sys.replica_states()).is_ok());

        let mut checker = TraceChecker::new(Counter);
        for d in sys.requested_in_order() {
            checker.on_request(d.clone()).expect("well-formed");
        }
        for (id, v, w) in sys.responses_log() {
            checker.on_response(*id, v.clone(), w.clone());
        }
        let v58 = checker.check_eventual_order(&sys.minlabel_order(), false);
        prop_assert!(v58.is_empty(), "{v58:?}");
    }

    /// Determinism: identical configurations yield identical traces.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..500) {
        let run = || {
            let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(7));
            let cfg = SystemConfig::new(3).with_seed(seed).with_channels(ch, ch);
            let mut sys = SimSystem::new(Counter, cfg);
            let c = sys.add_client(0);
            for i in 0..10u64 {
                sys.submit(c, CounterOp::Increment(1), &[], i % 3 == 0);
                sys.run_for(SimDuration::from_millis(4));
            }
            sys.run_until_quiescent();
            (
                sys.minlabel_order(),
                sys.responses_log().to_vec(),
                sys.replica_states(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

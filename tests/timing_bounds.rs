//! Section 9 performance guarantees verified in virtual time: the
//! Theorem 9.3 response bounds δ(x), the Lemma 9.2 done-everywhere bound,
//! and the Theorem 9.4 recovery property.

use esds::core::OpId;
use esds::datatypes::{Counter, CounterOp};
use esds::harness::{FaultEvent, OpClass, SimSystem, SystemConfig};
use esds_alg::RelayPolicy;
use esds_sim::{ChannelConfig, SimDuration, SimTime};

fn max_latency_of_class(sys: &SimSystem<Counter>, class: OpClass) -> Option<SimDuration> {
    sys.op_times()
        .values()
        .filter(|t| t.class == class)
        .filter_map(|t| t.responded.map(|r| r.duration_since(t.submitted)))
        .max()
}

/// A workload that stresses all three δ(x) classes, with round-robin relay
/// so `prev` dependencies cross replicas.
fn bounded_run(seed: u64) -> (SimSystem<Counter>, SimDuration, SimDuration, SimDuration) {
    let cfg = SystemConfig::new(3)
        .with_seed(seed)
        .with_relay(RelayPolicy::RoundRobin);
    let (df, dg, g) = (cfg.df(), cfg.dg(), cfg.gossip_interval);
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    for k in 0..30u64 {
        let at = SimTime::from_millis(45 * k);
        let anchor = sys.submit_at(at, c, CounterOp::Increment(1), &[], false);
        sys.submit_at(
            at + SimDuration::from_millis(1),
            c,
            CounterOp::Read,
            &[anchor],
            false,
        );
        sys.submit_at(
            at + SimDuration::from_millis(2),
            c,
            CounterOp::Read,
            &[],
            true,
        );
    }
    sys.run_until_quiescent();
    (sys, df, dg, g)
}

#[test]
fn theorem_9_3_response_bounds() {
    for seed in [1, 2, 3] {
        let (sys, df, dg, g) = bounded_run(seed);
        for class in [
            OpClass::NonstrictEmptyPrev,
            OpClass::NonstrictWithPrev,
            OpClass::Strict,
        ] {
            let measured = max_latency_of_class(&sys, class).expect("class populated");
            let bound = class.delta_bound(df, dg, g);
            assert!(
                measured <= bound,
                "seed {seed} class {class:?}: {measured} > δ(x) = {bound}"
            );
        }
    }
}

#[test]
fn lemma_9_2_done_everywhere_bound() {
    for seed in [4, 5] {
        let cfg = SystemConfig::new(4).with_seed(seed);
        let bound = cfg.df() + cfg.gossip_interval + cfg.dg();
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        let mut prev: Option<OpId> = None;
        for k in 0..25u64 {
            let at = SimTime::from_millis(17 * k);
            let p: Vec<OpId> = if k % 3 == 0 {
                prev.into_iter().collect()
            } else {
                vec![]
            };
            prev = Some(sys.submit_at(at, c, CounterOp::Increment(1), &p, false));
        }
        sys.run_until_quiescent();
        for (id, t) in sys.op_times() {
            let done = t.done_everywhere.expect("converged run");
            let took = done.duration_since(t.submitted);
            assert!(took <= bound, "seed {seed} op {id}: {took} > {bound}");
        }
    }
}

#[test]
fn locality_note_after_theorem_9_3() {
    // "If a client only specifies dependencies on operations it requested,
    // and its front end always communicates with the same replica, then …
    // the delay for nonstrict operations is reduced to at most 2df."
    let cfg = SystemConfig::new(3).with_seed(6); // attached (fixed) relay
    let two_df = cfg.df() * 2;
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    let mut prev: Option<OpId> = None;
    for k in 0..20u64 {
        let at = SimTime::from_millis(3 * k); // dense: gossip cannot help
        let p: Vec<OpId> = prev.into_iter().collect();
        prev = Some(sys.submit_at(at, c, CounterOp::Increment(1), &p, false));
    }
    sys.run_until_quiescent();
    let worst = sys
        .op_times()
        .values()
        .filter_map(|t| t.responded.map(|r| r.duration_since(t.submitted)))
        .max()
        .expect("answered");
    assert!(
        worst <= two_df,
        "locality bound violated: {worst} > {two_df}"
    );
}

#[test]
fn theorem_9_4_bounds_after_failure_period() {
    // Timing assumptions violated during [0, 500ms): channels 100× slower.
    // After restoration, responses (measured from the restoration point,
    // plus one retry period for requests stranded in the slow channel)
    // satisfy the same bounds.
    let cfg = SystemConfig::new(3)
        .with_seed(11)
        .with_retry(SimDuration::from_millis(30));
    let (df, dg, g) = (cfg.df(), cfg.dg(), cfg.gossip_interval);
    let slow = ChannelConfig::fixed(SimDuration::from_millis(500));
    let (fr, rr) = (cfg.fr_channel, cfg.rr_channel);
    let mut sys = SimSystem::new(Counter, cfg);
    sys.schedule_fault(
        SimTime::ZERO,
        FaultEvent::SetChannels { fr: slow, rr: slow },
    );
    let restore = SimTime::from_millis(500);
    sys.schedule_fault(restore, FaultEvent::SetChannels { fr, rr });

    let c = sys.add_client(0);
    let mut ids = Vec::new();
    for k in 0..10u64 {
        let at = SimTime::from_millis(40 * k); // all submitted in the bad window
        ids.push(sys.submit_at(at, c, CounterOp::Increment(1), &[], false));
    }
    sys.run_until_quiescent();

    let slack = SimDuration::from_millis(30); // one retry period
    let bound = OpClass::NonstrictEmptyPrev.delta_bound(df, dg, g) + slack;
    for id in ids {
        let t = &sys.op_times()[&id];
        let responded = t.responded.expect("answered after recovery");
        let from = t.submitted.max(restore);
        let took = responded.saturating_duration_since(from);
        assert!(took <= bound, "op {id}: {took} > {bound} after recovery");
    }
}

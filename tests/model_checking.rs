//! Bounded exhaustive model checking (esds-mc) over real data types:
//! every schedule of small configurations satisfies the paper's
//! invariants, and the ESDS-I ≡ ESDS-II equivalence (§5.3) holds in both
//! directions on every explored execution.

use esds::core::{ClientId, OpDescriptor, OpId, ReplicaId};
use esds::datatypes::{Bank, BankOp, Counter, CounterOp};
use esds::mc::{explore_alg, explore_spec, AlgScope, SpecScope};
use esds::spec::SpecVariant;

fn id(c: u32, s: u64) -> OpId {
    OpId::new(ClientId(c), s)
}

#[test]
fn spec_equivalence_on_conflicting_counter_ops() {
    // The paper's §10.3 conflict: increment and double do not commute, so
    // different linear extensions give different values — the automata
    // must expose exactly the valset and still stabilize to one order.
    let ops = vec![
        OpDescriptor::new(id(0, 0), CounterOp::Increment(1)),
        OpDescriptor::new(id(1, 0), CounterOp::Double),
        OpDescriptor::new(id(0, 1), CounterOp::Read).with_prev([id(0, 0)]),
    ];
    for variant in [SpecVariant::EsdsI, SpecVariant::EsdsII] {
        let mut scope = SpecScope::new(Counter, ops.clone());
        scope.max_states = 400_000;
        let report = explore_spec(scope, variant);
        assert!(report.passed(), "{variant:?}: {:#?}", report.violations);
        assert!(
            !report.truncated,
            "{variant:?} truncated at {}",
            report.states
        );
    }
}

#[test]
fn spec_equivalence_with_strict_ops() {
    let ops = vec![
        OpDescriptor::new(id(0, 0), CounterOp::Increment(2)),
        OpDescriptor::new(id(1, 0), CounterOp::Read).with_strict(true),
    ];
    for variant in [SpecVariant::EsdsI, SpecVariant::EsdsII] {
        let report = explore_spec(SpecScope::new(Counter, ops.clone()), variant);
        assert!(report.passed(), "{variant:?}: {:#?}", report.violations);
        assert!(!report.truncated);
    }
}

#[test]
fn alg_all_schedules_conflicting_ops() {
    // Increment at r0 races Double at r1 (the §10.3 divergence pair):
    // every interleaving of deliveries and gossip must satisfy the §7/§8
    // invariants, and every fully-gossiped schedule must converge to one
    // eventual order with matching states.
    let mut scope = AlgScope::new(
        Counter,
        vec![
            (
                OpDescriptor::new(id(0, 0), CounterOp::Increment(1)),
                ReplicaId(0),
            ),
            (OpDescriptor::new(id(1, 0), CounterOp::Double), ReplicaId(1)),
        ],
    );
    scope.gossip_budget = 3;
    scope.max_states = 500_000;
    let report = explore_alg(scope);
    assert!(report.passed(), "{:#?}", report.violations);
    assert!(!report.truncated, "truncated at {} states", report.states);
    assert!(report.converged_terminals > 0);
}

#[test]
fn alg_all_schedules_strict_withdrawal() {
    // A strict withdrawal racing a deposit: in every schedule where the
    // system reaches full stability, the withdrawal's response must match
    // the eventual total order (no reversed admission decisions).
    let mut scope = AlgScope::new(
        Bank,
        vec![
            (
                OpDescriptor::new(id(0, 0), BankOp::Deposit(10)),
                ReplicaId(0),
            ),
            (
                OpDescriptor::new(id(1, 0), BankOp::Withdraw(10)).with_strict(true),
                ReplicaId(1),
            ),
        ],
    );
    scope.gossip_budget = 3;
    scope.max_states = 500_000;
    let report = explore_alg(scope);
    assert!(report.passed(), "{:#?}", report.violations);
    assert!(report.converged_terminals > 0);
}

//! The TCP deployment (esds-wire) end to end: framed binary protocol over
//! real sockets, driving the same replica state machines as the simulator.

use std::time::Duration;

use esds::core::OpId;
use esds::datatypes::{Bank, BankOp, BankValue, Queue, QueueOp, QueueValue};
use esds::wire::{TcpCluster, TcpClusterConfig};

#[test]
fn bank_strict_withdrawals_over_sockets() {
    let mut cluster = TcpCluster::launch(Bank, TcpClusterConfig::new(3));
    let mut east = cluster.client();
    let mut west = cluster.client();

    let mut deposits = Vec::new();
    for _ in 0..5 {
        deposits.push(east.submit(BankOp::Deposit(20), &[], false));
    }
    for id in &deposits {
        assert_eq!(
            east.await_response(*id, Duration::from_secs(10)),
            Some(BankValue::Ack)
        );
    }

    // Racing strict withdrawals of 60 from a 100 balance: exactly one fits
    // twice, so of the two 60-withdrawals exactly one is admitted.
    let we = east.submit(BankOp::Withdraw(60), &deposits, true);
    let ww = west.submit(BankOp::Withdraw(60), &deposits, true);
    let ve = east
        .await_response(we, Duration::from_secs(30))
        .expect("east answered");
    let vw = west
        .await_response(ww, Duration::from_secs(30))
        .expect("west answered");
    let admitted = [&ve, &vw]
        .iter()
        .filter(|v| matches!(v, BankValue::Withdrawn(true)))
        .count();
    assert_eq!(admitted, 1, "east={ve:?} west={vw:?}");

    let reps = cluster.shutdown();
    let states: Vec<u64> = reps.iter().map(|r| r.current_state()).collect();
    assert!(states.iter().all(|s| *s == 40), "diverged: {states:?}");
}

#[test]
fn queue_prev_chain_over_sockets_with_summarized_gossip() {
    let mut cluster = TcpCluster::launch(Queue, TcpClusterConfig::new(2).with_summarized_gossip());
    let mut producer = cluster.client();
    let mut consumer = cluster.client();

    // A produce chain: each enqueue depends on the previous one, so every
    // replica applies them in FIFO order.
    let mut chain: Vec<OpId> = Vec::new();
    for i in 0..4 {
        let prev: Vec<OpId> = chain.last().copied().into_iter().collect();
        chain.push(producer.submit(QueueOp::Enqueue(i), &prev, false));
    }
    for id in &chain {
        assert_eq!(
            producer.await_response(*id, Duration::from_secs(10)),
            Some(QueueValue::Ack)
        );
    }

    // A strict dequeue pinned after the chain pops the first element —
    // in the eventual order, exactly item 0.
    let deq = consumer.submit(QueueOp::Dequeue, &chain, true);
    assert_eq!(
        consumer.await_response(deq, Duration::from_secs(30)),
        Some(QueueValue::Item(Some(0)))
    );

    let reps = cluster.shutdown();
    let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "diverged: {states:?}"
    );
    let want: std::collections::VecDeque<i64> = vec![1, 2, 3].into();
    assert_eq!(states[0], want);
}

//! Domain scenarios on the two strongly-conflicting data types (Bank,
//! Queue) under the simulator, including fault injection: the mixed
//! strict/nonstrict idioms the paper's introduction motivates, checked
//! end to end.

use esds::core::{OpId, ReplicaId};
use esds::datatypes::{Bank, BankOp, BankValue, Queue, QueueOp, QueueValue};
use esds::harness::{FaultEvent, SimSystem, SystemConfig};
use esds::sim::{ChannelConfig, SimDuration, SimTime};

#[test]
fn racing_strict_withdrawals_admit_exactly_the_funds() {
    // Five ATMs each deposit 20, then all five race a strict withdrawal of
    // 40 from the resulting balance of 100: exactly two must be admitted,
    // in every run, regardless of which two win.
    let mut sys = SimSystem::new(Bank, SystemConfig::new(5).with_seed(31));
    let atms: Vec<_> = (0..5).map(|i| sys.add_client(i)).collect();
    let mut deposits = Vec::new();
    for &a in &atms {
        deposits.push(sys.submit(a, BankOp::Deposit(20), &[], false));
    }
    sys.run_until_quiescent();

    let withdrawals: Vec<OpId> = atms
        .iter()
        .map(|&a| sys.submit(a, BankOp::Withdraw(40), &deposits, true))
        .collect();
    sys.run_until_quiescent();

    let admitted = withdrawals
        .iter()
        .filter(|id| sys.response(**id) == Some(&BankValue::Withdrawn(true)))
        .count();
    assert_eq!(
        admitted, 2,
        "100 in funds admits exactly two 40-withdrawals"
    );

    // Closing state: 100 − 80 = 20 everywhere.
    let states = sys.replica_states();
    assert!(states.iter().all(|s| *s == 20), "diverged: {states:?}");
}

#[test]
fn nonstrict_withdrawal_can_disagree_with_the_eventual_order() {
    // The hazard that motivates strict withdrawals: with a *nonstrict*
    // withdrawal, the responding replica may not have seen the racing
    // withdrawal yet, so both can be told "admitted" even though the
    // eventual order only funds one. The service is working as specified —
    // responses to nonstrict operations may be explained by *some*
    // serialization, not the final one.
    let slow = ChannelConfig::fixed(SimDuration::from_millis(40));
    let cfg = SystemConfig::new(2)
        .with_seed(7)
        .with_channels(ChannelConfig::fixed(SimDuration::from_millis(1)), slow);
    let mut sys = SimSystem::new(Bank, cfg);
    let east = sys.add_client(0); // relay: replica 0
    let west = sys.add_client(1); // relay: replica 1

    let d = sys.submit(east, BankOp::Deposit(50), &[], false);
    sys.run_for(SimDuration::from_millis(200));

    // Both withdraw the whole balance, nonstrict, against different
    // replicas, before gossip can tell them about each other.
    let we = sys.submit(east, BankOp::Withdraw(50), &[d], false);
    let ww = sys.submit(west, BankOp::Withdraw(50), &[d], false);
    sys.run_until_quiescent();

    let ve = sys.response(we).cloned();
    let vw = sys.response(ww).cloned();
    let admitted = [&ve, &vw]
        .iter()
        .filter(|v| matches!(v, Some(BankValue::Withdrawn(true))))
        .count();
    assert_eq!(
        admitted, 2,
        "both nonstrict withdrawals are told 'admitted' ({ve:?}, {vw:?}) — \
         the documented weak-consistency hazard"
    );

    // But the *replicas* still converge: the eventual order funds only the
    // first, and every replica agrees on the final balance of 0.
    let states = sys.replica_states();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "diverged: {states:?}"
    );
    assert_eq!(
        states[0], 0,
        "one withdrawal applied, one rejected in-order"
    );
}

#[test]
fn work_queue_under_crash_preserves_fifo() {
    // A producer enqueues a prev-chained job list while a replica crashes
    // and recovers; strict dequeues afterwards still pop in FIFO order.
    let cfg = SystemConfig::new(3)
        .with_seed(99)
        .with_retry(SimDuration::from_millis(40));
    let mut sys = SimSystem::new(Queue, cfg);
    let producer = sys.add_client(0);
    let consumer = sys.add_client(1);

    let mut chain: Vec<OpId> = Vec::new();
    for job in 0..4 {
        let prev: Vec<OpId> = chain.last().copied().into_iter().collect();
        chain.push(sys.submit(producer, QueueOp::Enqueue(job), &prev, false));
        if job == 1 {
            // Crash replica 2 mid-stream; recover shortly after.
            sys.schedule_fault(
                sys.now() + SimDuration::from_millis(5),
                FaultEvent::Crash(ReplicaId(2)),
            );
            sys.schedule_fault(
                sys.now() + SimDuration::from_millis(120),
                FaultEvent::Recover(ReplicaId(2)),
            );
        }
        sys.run_for(SimDuration::from_millis(30));
    }

    let d1 = sys.submit(consumer, QueueOp::Dequeue, &chain, true);
    sys.run_until_converged(SimTime::from_millis(600_000))
        .expect("recovery restores liveness");
    let d2 = sys.submit(consumer, QueueOp::Dequeue, &[d1], true);
    sys.run_until_quiescent();

    assert_eq!(sys.response(d1), Some(&QueueValue::Item(Some(0))));
    assert_eq!(sys.response(d2), Some(&QueueValue::Item(Some(1))));

    let states = sys.replica_states();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "diverged: {states:?}"
    );
    let want: std::collections::VecDeque<i64> = vec![2, 3].into();
    assert_eq!(states[0], want);
}

#[test]
fn queue_len_explained_by_some_serialization() {
    // A nonstrict Len racing enqueues: its answer must be explainable by a
    // prefix consistent with the constraints — i.e. any value 0..=k where
    // k enqueues were requested, but never more.
    let mut sys = SimSystem::new(Queue, SystemConfig::new(3).with_seed(5));
    let p = sys.add_client(0);
    let q = sys.add_client(1);
    for i in 0..6 {
        sys.submit(p, QueueOp::Enqueue(i), &[], false);
    }
    let len = sys.submit(q, QueueOp::Len, &[], false);
    sys.run_until_quiescent();
    match sys.response(len) {
        Some(QueueValue::Size(n)) => assert!(*n <= 6, "len {n} exceeds requests"),
        other => panic!("unexpected response {other:?}"),
    }
}

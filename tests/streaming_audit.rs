//! The streaming audit against the batch oracle: on arbitrary
//! simulated executions — including partitions and crash/recovery —
//! the incremental [`StreamingChecker`] and the batch [`TraceChecker`]
//! agree (both accept honest traces, both reject corrupted ones), the
//! streaming certificate matches the eventual order's digest, and the
//! checker's resident window tracks the unstable frontier instead of
//! the trace length.
//!
//! The proptest blocks use `ProptestConfig::default()`, so the CI
//! `proptests` job's `PROPTEST_CASES=512` applies (local runs default
//! to 32 cases).

use esds::core::{ClientId, OpDescriptor, OpId, ReplicaId};
use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{AuditDriver, FaultEvent, SimSystem, SystemConfig};
use esds::spec::{order_digest, AuditEvent, StreamingChecker, TraceChecker};
use esds_alg::ReplicaConfig;
use esds_sim::{ChannelConfig, SimDuration, SimTime};
use proptest::prelude::*;

/// One scripted submission, as in `property_system.rs`.
#[derive(Clone, Debug)]
struct Step {
    client: usize,
    is_inc: bool,
    strict: bool,
    dep: bool,
    pause_ms: u64,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        0usize..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u64..25,
    )
        .prop_map(|(client, is_inc, strict, dep, pause_ms)| Step {
            client,
            is_inc,
            strict,
            dep,
            pause_ms,
        })
}

/// Which fault (if any) to inject mid-run.
#[derive(Clone, Copy, Debug)]
enum Fault {
    None,
    CrashRecover,
    PartitionHeal,
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::None),
        Just(Fault::CrashRecover),
        Just(Fault::PartitionHeal),
    ]
}

/// Runs a scripted workload with the streaming audit riding along
/// (responses via step reports, stabilizations via watermark polls).
/// Panics if the audit rejects the honest execution.
fn run_audited(
    steps: &[Step],
    seed: u64,
    fault: Fault,
) -> (SimSystem<Counter>, AuditDriver<Counter>) {
    let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(6));
    // Crash recovery restores from locally-generated labels, which the
    // basic (non-memoized) replica keeps; partitions work under either.
    let rc = match fault {
        Fault::CrashRecover => ReplicaConfig::basic().with_witness(),
        _ => ReplicaConfig::default().with_witness(),
    };
    let cfg = SystemConfig::new(3)
        .with_seed(seed)
        .with_replica(rc)
        .with_channels(ch, ch)
        // Front-end retries: requests lost to a crash or partition are
        // resubmitted, so every scripted op is eventually answered.
        .with_retry(SimDuration::from_millis(30));
    let mut sys = SimSystem::new(Counter, cfg);
    match fault {
        Fault::None => {}
        Fault::CrashRecover => {
            sys.schedule_fault(SimTime::from_millis(40), FaultEvent::Crash(ReplicaId(0)));
            sys.schedule_fault(SimTime::from_millis(160), FaultEvent::Recover(ReplicaId(0)));
        }
        Fault::PartitionHeal => {
            sys.schedule_fault(SimTime::from_millis(40), FaultEvent::Isolate(ReplicaId(1)));
            sys.schedule_fault(
                SimTime::from_millis(160),
                FaultEvent::Reconnect(ReplicaId(1)),
            );
        }
    }
    let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
    let mut audit = AuditDriver::new(Counter);
    let mut last: Vec<Option<OpId>> = vec![None; 3];
    for s in steps {
        let op = if s.is_inc {
            CounterOp::Increment(1)
        } else {
            CounterOp::Read
        };
        let prev: Vec<OpId> = if s.dep {
            last[s.client].into_iter().collect()
        } else {
            vec![]
        };
        let id = sys.submit(clients[s.client], op, &prev, s.strict);
        last[s.client] = Some(id);
        let horizon = sys.now() + SimDuration::from_millis(s.pause_ms.max(1));
        while sys.now() < horizon {
            let Some((_, report)) = sys.step_one() else {
                break;
            };
            audit
                .observe(&report)
                .unwrap_or_else(|v| panic!("streaming audit rejected honest step: {v}"));
        }
        audit
            .sync_watermark(&sys)
            .unwrap_or_else(|v| panic!("honest watermark rejected: {v}"));
    }
    // Keep stepping until the system is quiet AND the watermark covers
    // every submission: convergence of orders precedes full stability
    // *knowledge* (the gossip rounds that tell every replica that
    // everyone knows), and finish() requires the latter — while the
    // audit must also see every late response to drain its window.
    let deadline = SimTime::from_millis(600_000);
    while (audit.status().stabilized < steps.len() as u64 || !sys.is_converged())
        && sys.now() < deadline
    {
        let Some((_, report)) = sys.step_one() else {
            break;
        };
        audit
            .observe(&report)
            .unwrap_or_else(|v| panic!("streaming audit rejected honest step: {v}"));
        audit
            .sync_watermark(&sys)
            .unwrap_or_else(|v| panic!("final watermark rejected: {v}"));
    }
    (sys, audit)
}

/// The batch oracle's verdict on a finished system: (Theorem 5.8
/// violations, Theorem 5.7 violations).
fn batch_verdict(sys: &SimSystem<Counter>) -> (usize, usize) {
    let mut checker = TraceChecker::new(Counter);
    for d in sys.requested_in_order() {
        checker.on_request(d.clone()).expect("well-formed");
    }
    for (id, v, w) in sys.responses_log() {
        checker.on_response(*id, v.clone(), w.clone());
    }
    let v58 = checker.check_eventual_order(&sys.minlabel_order(), false);
    let (v57, _) = checker.check_witnessed_responses();
    (v58.len(), v57.len())
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Differential acceptance: on arbitrary honest executions — with
    /// and without partitions / crash-recovery — the streaming checker
    /// accepts exactly where the batch checker does, and its
    /// certificate digests the same eventual order the batch check ran
    /// against.
    #[test]
    fn streaming_agrees_with_batch_on_honest_traces(
        steps in proptest::collection::vec(step_strategy(), 1..20),
        seed in 0u64..500,
        fault in fault_strategy(),
    ) {
        let (mut sys, audit) = run_audited(&steps, seed, fault);
        let end = sys.run_until_converged(SimTime::from_millis(600_000));
        let (v58, v57) = batch_verdict(&sys);

        if end.is_ok() {
            prop_assert_eq!(v58, 0, "batch Theorem 5.8 violations on honest trace");
            prop_assert_eq!(v57, 0, "batch Theorem 5.7 violations on honest trace");

            let cert = audit
                .finish()
                .unwrap_or_else(|v| panic!("streaming rejected a batch-green trace: {v}"));
            let eto = sys.minlabel_order();
            prop_assert_eq!(cert.ops, eto.len() as u64);
            prop_assert_eq!(cert.digest, order_digest(&eto), "certificate digests the eventual order");

            let status = audit.status();
            prop_assert_eq!(status.resident, 0, "converged system leaves an empty window");
            prop_assert!(!status.failed);
        } else {
            // A crash can permanently lose an answered-but-ungossiped
            // operation: the front end holds a response but no surviving
            // replica holds the op, so the system itself never converges
            // and *no* checker can certify completeness. The checkers
            // must still agree: batch flags the incomplete eventual
            // order, streaming refuses the certificate for the same
            // reason — and neither invents a soundness violation.
            prop_assert!(
                matches!(fault, Fault::CrashRecover),
                "only a crash may lose operations: {end:?}"
            );
            prop_assert!(v58 > 0, "batch flags the incomplete eventual order");
            let err = audit
                .finish()
                .expect_err("streaming must refuse to certify an incomplete order");
            prop_assert!(
                err.violation.detail.contains("never stabilized"),
                "streaming names the missing coverage: {err}"
            );
            prop_assert!(
                !audit.status().failed,
                "incompleteness is a liveness gap, not a latched soundness violation"
            );
        }
    }

    /// Differential rejection: corrupt one answered response in an
    /// otherwise-honest trace and both checkers must reject it.
    #[test]
    fn streaming_and_batch_both_reject_corrupted_traces(
        steps in proptest::collection::vec(step_strategy(), 1..15),
        seed in 0u64..500,
    ) {
        let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(6));
        let cfg = SystemConfig::new(3)
            .with_seed(seed)
            .with_replica(ReplicaConfig::default().with_witness())
            .with_channels(ch, ch);
        let mut sys = SimSystem::new(Counter, cfg);
        let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
        let mut last: Vec<Option<OpId>> = vec![None; 3];
        let mut all: Vec<OpId> = Vec::new();
        for s in &steps {
            let op = if s.is_inc { CounterOp::Increment(1) } else { CounterOp::Read };
            let prev: Vec<OpId> = if s.dep { last[s.client].into_iter().collect() } else { vec![] };
            let id = sys.submit(clients[s.client], op, &prev, s.strict);
            last[s.client] = Some(id);
            all.push(id);
            sys.run_for(SimDuration::from_millis(s.pause_ms));
        }
        // A strict read fence constrained after everything: its response
        // is pinned to the eventual order, so corrupting it must be
        // caught by both checkers.
        let fence = sys.submit(clients[0], CounterOp::Read, &all, true);
        let end = sys.run_until_converged(SimTime::from_millis(600_000));
        prop_assert!(end.is_ok(), "no convergence: {end:?}");
        let eto = sys.minlabel_order();

        // Corrupt the fence's recorded value.
        let corrupt = |id: OpId, v: &CounterValue| -> CounterValue {
            if id == fence {
                match v {
                    CounterValue::Count(n) => CounterValue::Count(n.wrapping_add(1)),
                    CounterValue::Ack => CounterValue::Count(i64::MIN),
                }
            } else {
                v.clone()
            }
        };

        // Batch: rejected.
        let mut batch = TraceChecker::new(Counter);
        for d in sys.requested_in_order() {
            batch.on_request(d.clone()).expect("well-formed");
        }
        for (id, v, w) in sys.responses_log() {
            batch.on_response(*id, corrupt(*id, v), w.clone());
        }
        let v58 = batch.check_eventual_order(&eto, false);
        prop_assert!(!v58.is_empty(), "batch checker accepted a corrupted strict read");

        // Streaming: rejected, with the violation naming its theorem.
        let mut streaming = StreamingChecker::new(Counter);
        let mut verdict = Ok(());
        for d in sys.requested_in_order() {
            verdict = verdict.and(streaming.on_event(AuditEvent::Request(d.clone())));
        }
        for (id, v, w) in sys.responses_log() {
            verdict = verdict.and(streaming.on_response(*id, corrupt(*id, v), w.clone()));
        }
        for &id in &eto {
            verdict = verdict.and(streaming.on_stabilize(id));
        }
        let verdict = verdict.and(streaming.finish().map(|_| ()));
        let violation = verdict.expect_err("streaming checker accepted a corrupted strict read");
        prop_assert!(
            violation.violation.to_string().contains("Theorem"),
            "violation names its theorem: {}", violation
        );
    }
}

/// A streaming checker fed an N-op trace whose unstable frontier never
/// exceeds `lag` operations retires everything else: `peak_resident`
/// is a function of the frontier, not of N.
fn resident_profile(n: u64, lag: u64) -> (u64, u64, usize) {
    let mut ck = StreamingChecker::new(Counter);
    let c = ClientId(0);
    for i in 0..n {
        let id = OpId::new(c, i);
        ck.on_request(OpDescriptor::new(id, CounterOp::Increment(1)))
            .expect("honest request");
        ck.on_response(id, CounterValue::Ack, None)
            .expect("honest response");
        if i >= lag {
            ck.on_stabilize(OpId::new(c, i - lag))
                .expect("honest stabilize");
        }
    }
    for i in n.saturating_sub(lag)..n {
        ck.on_stabilize(OpId::new(c, i)).expect("tail stabilize");
    }
    let cert = ck.finish().expect("honest trace verifies");
    (cert.ops, cert.digest, ck.status().peak_resident)
}

/// The bounded-memory regression the tentpole promises: at 50 000
/// operations the checker's peak resident window equals the one a
/// 5 000-op trace needs — memory is O(unstable window), not O(trace).
#[test]
fn fifty_thousand_ops_audit_in_bounded_memory() {
    const LAG: u64 = 16;
    let (ops_small, _, peak_small) = resident_profile(5_000, LAG);
    let (ops_large, digest_large, peak_large) = resident_profile(50_000, LAG);
    assert_eq!(ops_small, 5_000);
    assert_eq!(ops_large, 50_000);
    assert_eq!(
        peak_large, peak_small,
        "peak resident window must not grow with trace length"
    );
    assert!(
        peak_large <= (LAG + 1) as usize,
        "peak resident {peak_large} exceeds the unstable frontier {LAG}"
    );
    // The certificate digests the full 50k order: recompute it directly.
    let order: Vec<OpId> = (0..50_000).map(|i| OpId::new(ClientId(0), i)).collect();
    assert_eq!(digest_large, order_digest(&order));
}

/// The same bound, live: a simulated system audited step-by-step with
/// prompt watermark polls retires operations mid-run, so the peak
/// window stays far below the op count and drains to zero at the end.
#[test]
fn resident_window_tracks_unstable_frontier_in_simulation() {
    let steps: Vec<Step> = (0..30)
        .map(|i| Step {
            client: i % 3,
            is_inc: i % 4 != 3,
            strict: i % 10 == 9,
            dep: i % 5 == 2,
            // Long pauses: stability lands between submissions, so the
            // audited window stays at the in-flight handful.
            pause_ms: 200,
        })
        .collect();
    let (mut sys, audit) = run_audited(&steps, 7, Fault::None);
    sys.run_until_converged(SimTime::from_millis(600_000))
        .expect("converged");
    let cert = audit.finish().expect("honest trace verifies");
    assert_eq!(cert.ops, sys.minlabel_order().len() as u64);
    let status = audit.status();
    assert_eq!(status.resident, 0, "window drains at convergence");
    assert!(
        status.peak_resident <= 8,
        "peak window {} should track the in-flight frontier, not the {}-op trace",
        status.peak_resident,
        steps.len()
    );
}

//! End-to-end eventual serializability: random mixed workloads through the
//! simulated service, checked against the paper's behavioural theorems
//! (5.7, 5.8) using the system-wide minimum-label order as the eventual
//! total order witness.

use esds::core::{OpId, ReplicaId};
use esds::datatypes::{Counter, CounterOp, KvOp, KvStore};
use esds::harness::{SimSystem, SystemConfig};
use esds::spec::{check_converged, TraceChecker};
use esds_alg::{RelayPolicy, ReplicaConfig};
use esds_sim::{ChannelConfig, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Drives a random counter workload and validates the full trace.
fn counter_scenario(seed: u64, n_replicas: usize, ops: usize) {
    let cfg = SystemConfig::new(n_replicas)
        .with_seed(seed)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_channels(
            ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(8)),
            ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(8)),
        );
    let mut sys = SimSystem::new(Counter, cfg);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
    let mut checker = TraceChecker::new(Counter);
    let mut last: Option<OpId> = None;

    for i in 0..ops {
        let c = clients[i % clients.len()];
        let op = if rng.gen_bool(0.5) {
            CounterOp::Increment(rng.gen_range(1..5))
        } else {
            CounterOp::Read
        };
        let strict = rng.gen_bool(0.25);
        let prev: Vec<OpId> = if rng.gen_bool(0.3) {
            last.into_iter().collect()
        } else {
            Vec::new()
        };
        let id = sys.submit(c, op, &prev, strict);
        last = Some(id);
        if rng.gen_bool(0.4) {
            sys.run_for(SimDuration::from_millis(rng.gen_range(1..15)));
        }
    }
    sys.run_until_quiescent();

    // Feed the checker the full trace.
    for d in sys.requested_in_order() {
        checker.on_request(d.clone()).expect("well-formed");
    }
    for (id, v, w) in sys.responses_log() {
        checker.on_response(*id, v.clone(), w.clone());
    }

    // Theorem 5.8 with the minlabel order as the eventual total order.
    let eto = sys.minlabel_order();
    let violations = checker.check_eventual_order(&eto, false);
    assert!(violations.is_empty(), "seed {seed}: {violations:?}");

    // Theorem 5.7: every witnessed response is explained.
    let (violations, skipped) = checker.check_witnessed_responses();
    assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    assert_eq!(skipped, 0, "witness recording was enabled");

    // Convergence: same order, same state, everywhere.
    check_converged(&sys.local_orders(), &sys.replica_states()).expect("converged");
}

#[test]
fn counter_workloads_across_seeds() {
    for seed in 0..8 {
        counter_scenario(seed, 3, 30);
    }
}

#[test]
fn counter_workload_many_replicas() {
    counter_scenario(99, 6, 40);
}

#[test]
fn kv_workload_round_robin_relay() {
    let cfg = SystemConfig::new(4)
        .with_seed(5)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_relay(RelayPolicy::RoundRobin);
    let mut sys = SimSystem::new(KvStore, cfg);
    let mut rng = SmallRng::seed_from_u64(17);
    let c = sys.add_client(0);
    let mut checker = TraceChecker::new(KvStore);
    let mut put_ids: Vec<OpId> = Vec::new();

    for i in 0..40 {
        let key = format!("k{}", rng.gen_range(0..5));
        if rng.gen_bool(0.5) {
            let id = sys.submit(c, KvOp::Put(key, format!("v{i}")), &[], false);
            put_ids.push(id);
        } else {
            // Reads depend on the latest put so they are never served from
            // a replica that has not yet seen it.
            let prev: Vec<OpId> = put_ids.last().copied().into_iter().collect();
            sys.submit(c, KvOp::Get(key), &prev, rng.gen_bool(0.3));
        }
        sys.run_for(SimDuration::from_millis(3));
    }
    sys.run_until_quiescent();

    for d in sys.requested_in_order() {
        checker.on_request(d.clone()).expect("well-formed");
    }
    for (id, v, w) in sys.responses_log() {
        checker.on_response(*id, v.clone(), w.clone());
    }
    let eto = sys.minlabel_order();
    assert!(checker.check_eventual_order(&eto, false).is_empty());
    let (violations, _) = checker.check_witnessed_responses();
    assert!(violations.is_empty(), "{violations:?}");
    check_converged(&sys.local_orders(), &sys.replica_states()).expect("converged");
}

#[test]
fn broadcast_relay_deduplicates_responses() {
    let cfg = SystemConfig::new(3)
        .with_seed(8)
        .with_relay(RelayPolicy::Broadcast);
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    let id = sys.submit(c, CounterOp::Increment(1), &[], false);
    sys.run_until_quiescent();
    // Three replicas each answered; the client saw exactly one value.
    assert!(sys.responses_log().len() >= 3);
    assert!(sys.response(id).is_some());
    assert_eq!(sys.completed_count(), 1);
}

#[test]
fn crashed_replica_blocks_strict_until_recovery() {
    // Strict operations need stability at *every* replica: with one
    // replica isolated, strict ops must not answer; after reconnection
    // they must.
    let cfg = SystemConfig::new(3)
        .with_seed(12)
        .with_retry(SimDuration::from_millis(50));
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    sys.schedule_fault(
        SimTime::from_millis(1),
        esds::harness::FaultEvent::Isolate(ReplicaId(2)),
    );
    let strict = sys.submit(c, CounterOp::Read, &[], true);
    let loose = sys.submit(c, CounterOp::Read, &[], false);
    sys.run_for(SimDuration::from_millis(500));
    assert!(sys.response(loose).is_some(), "nonstrict unaffected");
    assert!(
        sys.response(strict).is_none(),
        "strict must wait for replica 2"
    );
    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(1),
        esds::harness::FaultEvent::Reconnect(ReplicaId(2)),
    );
    sys.run_until_converged(SimTime::from_millis(30_000))
        .expect("converges after heal");
    assert!(sys.response(strict).is_some());
}

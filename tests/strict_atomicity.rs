//! Corollary 5.9: when every request is strict, the service behaves like
//! an atomic object — one total order (the eventual total order) explains
//! every response. Verified against the centralized `ReferenceService`
//! oracle and the trace checker in all-ops mode.

use esds::datatypes::{Counter, CounterOp, Register, RegisterOp};
use esds::harness::{SimSystem, SystemConfig};
use esds::spec::{replay_serial, TraceChecker};
use esds_alg::ReplicaConfig;
use esds_core::OpId;
use esds_sim::{ChannelConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn all_strict_counter_is_serializable() {
    for seed in 0..5 {
        let cfg = SystemConfig::new(3)
            .with_seed(seed)
            .with_replica(ReplicaConfig::default().with_witness());
        let mut sys = SimSystem::new(Counter, cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
        for i in 0..20 {
            let c = clients[i % clients.len()];
            let op = if rng.gen_bool(0.5) {
                CounterOp::Increment(rng.gen_range(1..4))
            } else {
                CounterOp::Read
            };
            sys.submit(c, op, &[], true);
            if rng.gen_bool(0.5) {
                sys.run_for(SimDuration::from_millis(rng.gen_range(1..20)));
            }
        }
        sys.run_until_quiescent();

        let mut checker = TraceChecker::new(Counter);
        for d in sys.requested_in_order() {
            checker.on_request(d.clone()).expect("well-formed");
        }
        for (id, v, w) in sys.responses_log() {
            checker.on_response(*id, v.clone(), w.clone());
        }
        // Corollary 5.9: the eventual order explains EVERY response.
        let eto = sys.minlabel_order();
        let violations = checker.check_eventual_order(&eto, true);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn all_strict_matches_reference_replay() {
    // The responses of an all-strict run must equal a serial replay of the
    // eventual order — i.e. what a centralized atomic object would return
    // for that serialization.
    let cfg = SystemConfig::new(3)
        .with_seed(31)
        .with_replica(ReplicaConfig::default().with_witness());
    let mut sys = SimSystem::new(Register, cfg);
    let a = sys.add_client(0);
    let b = sys.add_client(1);
    for i in 0..10i64 {
        sys.submit(a, RegisterOp::Write(i), &[], true);
        sys.submit(b, RegisterOp::Read, &[], true);
    }
    sys.run_until_quiescent();

    let eto: Vec<OpId> = sys.minlabel_order();
    let requested = sys.requested().clone();
    let serial = replay_serial(&Register, eto.iter().map(|id| &requested[id]));
    let serial_map: std::collections::BTreeMap<_, _> = serial.into_iter().collect();
    for (id, v, _) in sys.responses_log() {
        assert_eq!(
            serial_map.get(id),
            Some(v),
            "strict response for {id} deviates from the atomic serialization"
        );
    }
}

#[test]
fn strict_reads_never_regress() {
    // Successive strict reads from one client observe a monotonically
    // nondecreasing counter: the stable prefix only grows (Lemma 5.1).
    let cfg = SystemConfig::new(3).with_seed(77);
    let mut sys = SimSystem::new(Counter, cfg);
    let writer = sys.add_client(0);
    let reader = sys.add_client(1);
    let mut reads = Vec::new();
    for _k in 0..10 {
        sys.submit(writer, CounterOp::Increment(1), &[], false);
        reads.push(sys.submit(reader, CounterOp::Read, &[], true));
        sys.run_for(SimDuration::from_millis(30));
    }
    sys.run_until_quiescent();
    let mut last = i64::MIN;
    for r in reads {
        let esds::datatypes::CounterValue::Count(v) = sys.response(r).expect("answered") else {
            panic!("read returned non-count");
        };
        assert!(*v >= last, "strict reads regressed: {v} after {last}");
        last = *v;
    }
}

#[test]
fn all_strict_under_reordering_channels() {
    let ch = ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(10));
    let cfg = SystemConfig::new(3)
        .with_seed(13)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_channels(ch, ch);
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    for _ in 0..15 {
        sys.submit(c, CounterOp::Increment(1), &[], true);
    }
    sys.run_until_quiescent();
    let mut checker = TraceChecker::new(Counter);
    for d in sys.requested_in_order() {
        checker.on_request(d.clone()).expect("well-formed");
    }
    for (id, v, w) in sys.responses_log() {
        checker.on_response(*id, v.clone(), w.clone());
    }
    assert!(checker
        .check_eventual_order(&sys.minlabel_order(), true)
        .is_empty());
}

//! Conformance of the **sharded** service layer, under **batched**
//! gossip, against the `ESDS-II` specification.
//!
//! Until this suite, the `ConformanceObserver` (the executable forward
//! simulation of Theorem 8.4) only ever watched single-group systems.
//! Each shard of a `ShardedSimSystem` is an unmodified ESDS instance over
//! its slice of the keyspace, so the sharded conformance statement is:
//! every shard's step trace is simulable by its own `ESDS-II` automaton.
//! The cross-shard layer adds nothing the spec must know about — it only
//! *delays* submissions (a dependent operation is released to its shard
//! after its foreign predecessors respond), and delayed `request(x)`
//! actions are still just `request(x)` actions.
//!
//! Running the whole thing under `GossipStrategy::Batched` additionally
//! checks that the watermark-handshake deltas preserve every proof
//! obligation: the observer re-derives `po` from replica labels *and
//! in-flight gossip* each step, so a batched exchange that dropped or
//! reordered knowledge a snapshot would have carried shows up as a failed
//! precondition here.

use esds::alg::ReplicaConfig;
use esds::datatypes::{KvOp, KvStore, KvValue};
use esds::harness::{ConformanceObserver, ShardedSimSystem, ShardedSystemConfig, SystemConfig};
use esds::spec::check_converged;

#[test]
fn sharded_system_conforms_to_esds2_under_batched_gossip() {
    // Witness recording + in-flight tracking are what the observer needs;
    // batched gossip with a 2-tick accumulation exercises the delta path.
    let shard_cfg = SystemConfig::new(3)
        .with_seed(29)
        .with_replica(ReplicaConfig::default().with_witness().with_batched(2))
        .with_tracking();
    let n_shards = 3;
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(n_shards, shard_cfg));
    let mut observers: Vec<ConformanceObserver<KvStore>> = (0..n_shards)
        .map(|_| ConformanceObserver::new(KvStore))
        .collect();

    // A workload that crosses shards: writes over 8 keys, occasional
    // reads chained after the previous operation (cross-shard prev when
    // the keys hash apart — those defer until the foreign response), and
    // a strict op now and then (exercising stability through batched
    // summaries).
    let c = sys.add_client(0);
    let mut last = None;
    let mut submitted = 0usize;
    for i in 0..16u64 {
        let key = format!("k{}", i % 8);
        let op = if i % 3 == 0 {
            KvOp::get(&key)
        } else {
            KvOp::put(&key, format!("v{i}"))
        };
        let prev: Vec<_> = if i % 4 == 1 {
            last.into_iter().collect()
        } else {
            vec![]
        };
        last = Some(sys.submit(c, op, &prev, i % 5 == 0));
        submitted += 1;
    }

    // Drive every shard one event at a time, replaying each step against
    // that shard's own ESDS-II automaton. Deferred cross-shard releases
    // happen inside step_shard, so their request(x) actions appear in the
    // owning shard's next report.
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 200_000, "sharded conformance test runaway");
        let mut all_trivial = true;
        for (s, obs) in observers.iter_mut().enumerate() {
            let Some((_, report)) = sys.step_shard(s) else {
                continue;
            };
            all_trivial &= report.is_trivial();
            let view = sys.shard_view(s).expect("no crashes in this test");
            obs.observe(&report, &view)
                .unwrap_or_else(|e| panic!("shard {s} conformance violated: {e}"));
        }
        if sys.is_converged() && all_trivial {
            break;
        }
    }

    // Everything submitted was answered, and each shard's spec automaton
    // entered and stabilized exactly the operations routed to it.
    assert_eq!(sys.completed_count(), submitted);
    let mut spec_ops = 0usize;
    for (s, obs) in observers.iter().enumerate() {
        assert!(obs.actions > 0, "shard {s} observed no actions");
        assert_eq!(
            obs.spec().ops().len(),
            obs.spec().stabilized().len(),
            "shard {s} left operations unstabilized"
        );
        spec_ops += obs.spec().ops().len();
    }
    assert_eq!(
        spec_ops, submitted,
        "every op entered exactly one shard's spec"
    );

    // And the usual end-state sanity: per-shard convergence plus a read
    // seeing its chained write.
    for s in 0..n_shards {
        let shard = &sys.shards()[s];
        check_converged(&shard.local_orders(), &shard.replica_states())
            .unwrap_or_else(|e| panic!("shard {s} diverged: {e}"));
    }
    let probe_w = sys.submit(c, KvOp::put("probe", "final"), &[], false);
    let probe_r = sys.submit(c, KvOp::get("probe"), &[probe_w], false);
    sys.run_until_quiescent();
    assert_eq!(
        sys.response(probe_r),
        Some(&KvValue::Value(Some("final".into())))
    );
}

/// Conformance of a **mixed keyed / whole-object workload**: scattered
/// `Keys` queries ride alongside keyed puts and gets, and every shard's
/// step trace — sub-operations included — must stay simulable by its own
/// `ESDS-II` automaton. A gather adds nothing the per-shard spec must
/// know about: each sub-operation is an ordinary `request(x)` on its
/// shard, and the merge happens outside the protocol entirely.
///
/// On top of per-shard conformance, the **barrier predicate** of the
/// strict gathers is asserted directly: for every involved shard, the
/// recorded (frontier, sub-operation) pair must satisfy
/// `check_barrier_cut` against the shard's eventual total order — the
/// sub-operation present, the whole answered frontier present, and the
/// sub-operation ordered after all of it (the per-shard half of the
/// Theorem 5.7/5.8 argument for gathered strict reads).
#[test]
fn mixed_gather_workload_conforms_and_barrier_cuts_hold() {
    use esds::spec::{check_barrier_cut, ShardBarrier};
    let shard_cfg = SystemConfig::new(3)
        .with_seed(83)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_tracking();
    let n_shards = 3usize;
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(n_shards, shard_cfg));
    let mut observers: Vec<ConformanceObserver<KvStore>> = (0..n_shards)
        .map(|_| ConformanceObserver::new(KvStore))
        .collect();

    let c = sys.add_client(0);
    let mut last = None;
    let mut gathers = Vec::new();
    let mut keyed = 0usize;
    let mut submitted = 0usize;
    for i in 0..20u64 {
        let key = format!("k{}", i % 10);
        let (op, strict) = match i % 5 {
            0..=2 => (KvOp::put(&key, format!("v{i}")), false),
            3 => (KvOp::get(&key), i % 2 == 1),
            _ => (KvOp::Keys, i % 10 == 9),
        };
        let is_gather = matches!(op, KvOp::Keys);
        let prev: Vec<_> = if i % 4 == 1 {
            last.into_iter().collect()
        } else {
            vec![]
        };
        let id = sys.submit(c, op, &prev, strict);
        if is_gather {
            gathers.push((id, strict));
        } else {
            keyed += 1;
        }
        last = Some(id);
        submitted += 1;
    }

    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 200_000, "mixed gather conformance test runaway");
        let mut all_trivial = true;
        for (s, obs) in observers.iter_mut().enumerate() {
            let Some((_, report)) = sys.step_shard(s) else {
                continue;
            };
            all_trivial &= report.is_trivial();
            let view = sys.shard_view(s).expect("no crashes in this test");
            obs.observe(&report, &view)
                .unwrap_or_else(|e| panic!("shard {s} conformance violated: {e}"));
        }
        if sys.is_converged() && all_trivial {
            break;
        }
    }

    // Every client operation answered — gathers merged, not partial.
    assert_eq!(sys.completed_client_ops(), submitted);
    // Each keyed op entered exactly one shard's spec; each gather entered
    // every involved shard's spec as its sub-operation.
    let spec_ops: usize = observers.iter().map(|o| o.spec().ops().len()).sum();
    assert_eq!(
        spec_ops,
        keyed + gathers.len() * n_shards,
        "sub-operations must enter exactly the involved shards' specs"
    );
    for (s, obs) in observers.iter().enumerate() {
        assert_eq!(
            obs.spec().ops().len(),
            obs.spec().stabilized().len(),
            "shard {s} left operations unstabilized"
        );
    }

    // The barrier predicate, shard by shard, for every strict gather.
    let mut strict_seen = 0usize;
    for (id, strict) in &gathers {
        let (subs, frontier) = sys.gather_detail(*id).expect("gather bookkeeping");
        assert_eq!(subs.len(), n_shards, "one sub-operation per shard");
        if !*strict {
            assert!(frontier.is_empty(), "eventual gathers take no barrier");
            continue;
        }
        strict_seen += 1;
        assert_eq!(
            frontier.len(),
            n_shards,
            "strict gathers barrier every shard"
        );
        for (shard, sub) in subs {
            let order = sys.shards()[*shard as usize].minlabel_order();
            let b = ShardBarrier {
                shard: *shard,
                frontier: frontier[shard].clone(),
                sub: *sub,
            };
            assert_eq!(
                check_barrier_cut(&b, &order),
                Vec::new(),
                "barrier violated on shard {shard} for {id}"
            );
        }
    }
    assert!(strict_seen > 0, "workload must include strict gathers");

    for s in 0..n_shards {
        let shard = &sys.shards()[s];
        check_converged(&shard.local_orders(), &shard.replica_states())
            .unwrap_or_else(|e| panic!("shard {s} diverged: {e}"));
    }
}

/// Conformance **through a live slot handoff**: a shard is added in the
/// middle of the workload, and every shard — source groups, the
/// receiving group, before, during, and after the migration — must stay
/// simulable by its own `ESDS-II` automaton, step by step.
///
/// The migration's internals all reduce to ordinary protocol actions the
/// observer already knows how to simulate: frozen submissions are merely
/// *delayed* `request(x)` actions; the replayed stable prefix enters the
/// receiving shard as fresh requests of the migration client; the `prev`
/// anchor that orders drained operations behind the transferred history
/// is a plain client-specified constraint. So the proof obligation here
/// is exactly Theorem 8.4 per shard, with the handoff exercising the
/// request/enter/stabilize paths across groups.
///
/// On top of conformance, the test asserts the end-to-end service
/// guarantees of the ISSUE: **no response lost** (every submitted
/// operation is answered), **none duplicated** (each operation entered
/// exactly one shard's spec automaton; replays are distinct migration-
/// client requests), and **stable prefixes stay consistent** (every
/// group converges to one order; chained reads see their writes across
/// the handoff).
#[test]
fn conformance_holds_through_slot_handoff() {
    let shard_cfg = SystemConfig::new(3)
        .with_seed(47)
        .with_replica(ReplicaConfig::default().with_witness())
        .with_tracking();
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(2, shard_cfg));
    let mut observers: Vec<ConformanceObserver<KvStore>> =
        (0..2).map(|_| ConformanceObserver::new(KvStore)).collect();

    let c = sys.add_client(0);
    let n_keys = 10u64;
    let mut last: Option<esds::core::ShardedOpId> = None;
    let mut submitted = 0usize;
    let mut ids = Vec::new();
    let mut chained_writes: Vec<(String, String)> = Vec::new();

    // Drive shard-by-shard steps, injecting workload as we go and adding
    // a shard a third of the way through.
    let mut round = 0u32;
    let mut migration_begun = false;
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 400_000, "handoff conformance test runaway");

        // Inject a little workload for the first 24 rounds.
        if round < 24 && guard.is_multiple_of(40) {
            let key = format!("k{}", round as u64 % n_keys);
            let val = format!("v{round}");
            let op = if round % 3 == 2 {
                KvOp::get(&key)
            } else {
                chained_writes.push((key.clone(), val.clone()));
                KvOp::put(&key, &val)
            };
            let prev: Vec<_> = if round % 4 == 1 {
                last.into_iter().collect()
            } else {
                vec![]
            };
            last = Some(sys.submit(c, op, &prev, round.is_multiple_of(5)));
            submitted += 1;
            round += 1;
        }
        // Mid-workload: grow the deployment. The observer for the new
        // shard starts fresh with the shard itself.
        if round == 8 && !migration_begun {
            let new = sys.begin_add_shard();
            assert_eq!(new as usize, observers.len());
            observers.push(ConformanceObserver::new(KvStore));
            migration_begun = true;
            assert!(sys.migration_active());
        }

        let mut all_trivial = true;
        for (s, obs) in observers.iter_mut().enumerate() {
            let Some((_, report)) = sys.step_shard(s) else {
                continue;
            };
            all_trivial &= report.is_trivial();
            let view = sys.shard_view(s).expect("no crashes in this test");
            obs.observe(&report, &view)
                .unwrap_or_else(|e| panic!("shard {s} conformance violated mid-handoff: {e}"));
        }
        if round >= 24 && sys.is_converged() && all_trivial {
            break;
        }
    }
    assert!(migration_begun);
    assert!(!sys.migration_active(), "handoff must have completed");
    assert_eq!(sys.table_version(), 1);
    assert_eq!(sys.n_shards(), 3);

    // No response lost: everything submitted was answered.
    ids.extend((0..submitted as u64).map(|s| esds::core::ShardedOpId::new(c, s)));
    for id in &ids {
        assert!(sys.response(*id).is_some(), "response for {id} lost");
    }
    // None duplicated: each operation entered exactly one shard's spec,
    // and the only extra spec entries are the replayed stable prefix
    // (the migration client's requests on the receiving shard).
    let spec_ops: usize = observers.iter().map(|o| o.spec().ops().len()).sum();
    let replayed = sys.completed_count() - submitted;
    assert!(replayed > 0, "the handoff must have replayed some history");
    assert_eq!(
        spec_ops,
        submitted + replayed,
        "operations entered more than one spec automaton"
    );
    for (s, obs) in observers.iter().enumerate() {
        assert_eq!(
            obs.spec().ops().len(),
            obs.spec().stabilized().len(),
            "shard {s} left operations unstabilized"
        );
    }
    // Stable prefixes consistent: every group individually converged.
    for s in 0..sys.n_shards() {
        let shard = &sys.shards()[s];
        check_converged(&shard.local_orders(), &shard.replica_states())
            .unwrap_or_else(|e| panic!("shard {s} diverged after handoff: {e}"));
    }
    // And the state survived the move: the last write of every key is
    // what a constrained read sees now.
    let mut finals: std::collections::BTreeMap<String, String> = Default::default();
    for (k, v) in chained_writes {
        finals.insert(k, v);
    }
    let mut reads = Vec::new();
    for (k, v) in &finals {
        reads.push((
            k.clone(),
            v.clone(),
            sys.submit(c, KvOp::get(k), &[], false),
        ));
    }
    sys.run_until_quiescent();
    for (k, v, id) in reads {
        assert_eq!(
            sys.response(id),
            Some(&KvValue::Value(Some(v.clone()))),
            "key {k} lost or reordered across the handoff"
        );
    }
}

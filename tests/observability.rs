//! The observability layer end to end: registry correctness under
//! threaded hammering, the bounded histogram differentialed against the
//! exact simulator histogram, the zero-cost disabled path, lifecycle
//! traces interleaving with the audit codec, and the conservation
//! invariants of a live 2-shard TCP deployment under chaos (the CI
//! `observability` lane runs the last of these with the chaos matrix's
//! environment and exports the metrics JSON artifact via
//! `ESDS_METRICS_OUT`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use esds::datatypes::{KvOp, KvStore};
use esds::obs::{bucket_index, BoundedHistogram, MetricsRegistry, OpTracer};
use esds::wire::{ChaosConfig, ShardedWireConfig, ShardedWireService};
use proptest::prelude::*;

/// The CI matrix's fault model, with a 5% loss floor when unconfigured
/// (same convention as `tests/wire_sharded.rs`).
fn chaos_from_env() -> ChaosConfig {
    let mut c = ChaosConfig::from_env(977);
    if std::env::var("ESDS_CHAOS_LOSS").is_err() {
        c.drop_probability = 0.05;
    }
    c
}

/// Handles are lock-free and clones share the atomic: 8 threads
/// hammering shared and private counters, gauges, and one histogram
/// must conserve every count exactly once the threads join.
#[test]
fn registry_conserves_totals_under_threaded_hammering() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = MetricsRegistry::new();
    let shared = reg.counter("hammer/shared");
    let hist = reg.histogram("hammer/latency");
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = shared.clone();
            let hist = hist.clone();
            let private = reg.counter(&format!("hammer/t{t}/private"));
            let gauge = reg.gauge(&format!("hammer/t{t}/hwm"));
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    shared.inc();
                    private.add(2);
                    gauge.set_max(i);
                    hist.record(i % 1000 + 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer/shared"), Some(THREADS * PER_THREAD));
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("hammer/t{t}/private")),
            Some(2 * PER_THREAD),
            "thread {t} private counter"
        );
        assert_eq!(
            snap.gauge(&format!("hammer/t{t}/hwm")),
            Some(PER_THREAD - 1)
        );
    }
    assert_eq!(snap.counter_total("private"), THREADS * 2 * PER_THREAD);
    let (_, h) = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "hammer/latency")
        .expect("histogram registered");
    assert_eq!(h.count, THREADS * PER_THREAD, "no sample lost or doubled");
    assert_eq!(h.max, 1000);
}

proptest! {
    /// Differential property of the bounded histogram against the exact
    /// `esds_sim::Histogram`: on the same samples, every reported
    /// quantile lands in the same log-bucket as the exact nearest-rank
    /// quantile, and the maximum is exact. This is what licenses
    /// replacing the unbounded sample-keeping histogram on service hot
    /// paths.
    #[test]
    fn bounded_histogram_shares_buckets_with_exact(
        samples in proptest::collection::vec(1u64..2_000_000, 1..300)
    ) {
        let bounded = BoundedHistogram::new();
        let mut exact = esds::sim::Histogram::new();
        for &s in &samples {
            bounded.record(s);
            exact.record(esds::sim::SimDuration::from_micros(s));
        }
        let got = bounded.summarize();
        prop_assert_eq!(got.count, samples.len() as u64);
        prop_assert_eq!(
            got.max,
            exact.max().unwrap().as_micros(),
            "max is tracked exactly, not bucketed"
        );
        for (p, approx) in [(50.0, got.p50), (95.0, got.p95), (99.0, got.p99)] {
            let truth = exact.percentile(p).unwrap().as_micros();
            prop_assert_eq!(
                bucket_index(approx),
                bucket_index(truth),
                "p{}: approx {} and exact {} must share a bucket",
                p, approx, truth
            );
        }
    }
}

/// The zero-cost claim, ratio-asserted at the service level: a
/// miniature closed-loop `RuntimeService` workload with the default
/// (disabled) registry must not be measurably slower than the same
/// workload with live metrics — the disabled path hands out `None`
/// handles, so instrumentation sites reduce to a branch. The bound is
/// deliberately generous (CI timing noise); `fig_obs_overhead` measures
/// the real ratio.
#[test]
fn disabled_metrics_add_no_measurable_service_cost() {
    fn run(obs: MetricsRegistry) -> Duration {
        let mut cfg = esds::runtime::RuntimeConfig::new(3).with_obs(obs);
        cfg.gossip_interval = Duration::from_millis(5);
        let mut svc = esds::runtime::RuntimeService::start(KvStore, cfg);
        let mut c = svc.client();
        let start = Instant::now();
        for i in 0..60u32 {
            let id = c.submit(KvOp::put(format!("k{}", i % 8), "v"), &[], false);
            assert!(c.await_response(id, Duration::from_secs(30)).is_some());
        }
        let elapsed = start.elapsed();
        svc.shutdown();
        elapsed
    }
    // Warm-up evens out thread-spawn and allocator effects.
    let _ = run(MetricsRegistry::disabled());
    let enabled = run(MetricsRegistry::new());
    let disabled = run(MetricsRegistry::disabled());
    assert!(
        disabled < enabled * 4 + Duration::from_millis(250),
        "disabled metrics path should cost nothing: disabled={disabled:?} enabled={enabled:?}"
    );
}

/// Op-lifecycle spans are real JSONL, carry the expected stages, and
/// interleave with the audit trace codec: `parse_line` skips them
/// (`Ok(None)`) instead of erroring, so one file can hold both streams.
#[test]
fn lifecycle_spans_feed_the_audit_codec() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let cfg = esds::runtime::RuntimeConfig::new(3)
        .with_obs(MetricsRegistry::new())
        .with_tracer(OpTracer::to_shared_buffer(buf.clone(), 1)); // sample every op
    let mut svc = esds::runtime::RuntimeService::start(KvStore, cfg);
    let mut c = svc.client();
    let id = c.submit(KvOp::put("traced", "v"), &[], false);
    assert!(c.await_response(id, Duration::from_secs(30)).is_some());
    svc.shutdown();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "sampling 1-in-1 must emit spans");
    let id_str = id.to_string();
    for stage in ["submit", "replica_accept", "answer"] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("\"stage\":\"{stage}\"")) && l.contains(&id_str)),
            "missing {stage} span for {id_str} in:\n{text}"
        );
    }
    for l in &lines {
        assert_eq!(
            esds::audit::parse_line(l),
            Ok(None),
            "audit codec must skip span lines, not error"
        );
    }
}

/// External atomics registered as counter sources are read live at
/// snapshot time — no copy, no staleness.
#[test]
fn counter_sources_are_read_live() {
    let reg = MetricsRegistry::new();
    let external = Arc::new(AtomicU64::new(0));
    reg.scoped("proxy")
        .counter_source("dropped", external.clone());
    assert_eq!(reg.snapshot().counter("proxy/dropped"), Some(0));
    external.store(41, Ordering::Relaxed);
    assert_eq!(reg.snapshot().counter("proxy/dropped"), Some(41));
}

/// The conservation test the CI `observability` lane runs: a live
/// 2-shard TCP deployment under the chaos matrix's fault model, metrics
/// on, queried over the wire. Asserts the cross-layer invariants that
/// hold for *any* correct run — answers never exceed submissions,
/// gossip flowed on every shard, chaos counters surface through the
/// registry, and the stability watermark kept advancing (its age gauge
/// is bounded by the run's own duration). Exports the full snapshot as
/// JSON when `ESDS_METRICS_OUT` is set.
#[test]
fn live_cluster_metrics_conservation_under_chaos() {
    let chaos = chaos_from_env();
    let registry = MetricsRegistry::new();
    let mut cfg = ShardedWireConfig::new(3)
        .with_chaos(chaos)
        .with_obs(registry.clone());
    cfg.cluster.gossip_interval = Duration::from_millis(20);
    let started = Instant::now();
    let mut svc = ShardedWireService::launch(KvStore, 2, cfg);
    let mut c = svc.client();

    let mut ids = Vec::new();
    for i in 0..30u32 {
        let strict = i % 10 == 7;
        ids.push(c.submit(
            KvOp::put(format!("key:{}", i % 12), format!("v{i}")),
            &[],
            strict,
        ));
    }
    for id in &ids {
        assert!(
            c.await_response(*id, Duration::from_secs(60)).is_some(),
            "operation {id} lost under chaos"
        );
    }

    // Exposition over the wire: every shard's relay answers
    // MetricsQuery with the (process-global) snapshot.
    for shard in 0..2u32 {
        let snap = c
            .metrics_snapshot(shard, Duration::from_secs(30))
            .unwrap_or_else(|| panic!("shard {shard} never answered MetricsQuery"));
        assert!(
            snap.counter_total("gossip_msgs") > 0,
            "wire snapshot must show gossip traffic"
        );
    }

    let snap = registry.snapshot();
    // Conservation: a response counted at most once per operation.
    let submitted = snap.counter_total("ops_submitted");
    let answered = snap.counter_total("ops_answered");
    assert_eq!(submitted, ids.len() as u64);
    assert!(
        answered <= submitted,
        "answers must never exceed submissions: {answered} > {submitted} \
         (duplicated responses double-counted?)"
    );
    assert_eq!(answered, ids.len() as u64, "every awaited op was counted");
    // Both shards really gossiped, and the per-peer byte counters saw it.
    for shard in 0..2u32 {
        let prefix = format!("shard{shard}/");
        let bytes: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with(&prefix) && n.ends_with("/gossip_bytes"))
            .map(|(_, v)| v)
            .sum();
        assert!(bytes > 0, "shard {shard} moved no gossip bytes");
        let reqs: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with(&prefix) && n.ends_with("/requests"))
            .map(|(_, v)| v)
            .sum();
        assert!(reqs > 0, "shard {shard} accepted no requests");
    }
    // The chaos proxies surface through the registry (satellite b); with
    // loss configured they must have actually dropped frames.
    assert!(
        snap.counter_total("forwarded") > 0,
        "chaos proxies carried traffic"
    );
    if chaos.drop_probability > 0.0 {
        assert!(
            snap.counter_total("dropped") > 0,
            "lossy run dropped no frames"
        );
    }
    // Post-quiescence the watermark-age gauge is bounded by the run's
    // own wall-clock: the stability frontier advanced during the run,
    // so its age cannot predate the deployment.
    let age_ms = snap.gauge_max("stable_watermark_age_ms");
    let run_ms = started.elapsed().as_millis() as u64;
    assert!(
        age_ms <= run_ms + 1000,
        "watermark age {age_ms}ms exceeds the run's own duration {run_ms}ms"
    );

    if let Ok(path) = std::env::var("ESDS_METRICS_OUT") {
        std::fs::write(&path, snap.render_json()).expect("writing ESDS_METRICS_OUT");
        eprintln!(
            "wrote {} counters / {} gauges / {} histograms to {path}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
    }
    svc.shutdown();
}

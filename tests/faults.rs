//! Fault injection (paper §9.3): message loss, crash/recovery with
//! volatile memory, isolation — safety is never violated and the system
//! converges once failures stop.

use esds::core::{OpId, ReplicaId};
use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{FaultEvent, SimSystem, SystemConfig};
use esds::spec::{check_converged, TraceChecker};
use esds_alg::ReplicaConfig;
use esds_sim::{ChannelConfig, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn loss_and_duplication_preserve_safety_and_liveness() {
    for seed in [3, 14] {
        let ch = ChannelConfig::fixed(SimDuration::from_millis(5))
            .with_loss(0.3)
            .with_dup(0.2);
        let cfg = SystemConfig::new(3)
            .with_seed(seed)
            .with_replica(ReplicaConfig::default().with_witness())
            .with_channels(ch, ch)
            .with_retry(SimDuration::from_millis(35));
        let mut sys = SimSystem::new(Counter, cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let clients: Vec<_> = (0..2).map(|i| sys.add_client(i)).collect();
        for i in 0..20 {
            let c = clients[i % 2];
            let op = if rng.gen_bool(0.5) {
                CounterOp::Increment(1)
            } else {
                CounterOp::Read
            };
            sys.submit(c, op, &[], rng.gen_bool(0.2));
            sys.run_for(SimDuration::from_millis(10));
        }
        sys.run_until_converged(SimTime::from_millis(300_000))
            .expect("retries restore liveness under loss");

        let mut checker = TraceChecker::new(Counter);
        for d in sys.requested_in_order() {
            checker.on_request(d.clone()).expect("well-formed");
        }
        for (id, v, w) in sys.responses_log() {
            checker.on_response(*id, v.clone(), w.clone());
        }
        let violations = checker.check_eventual_order(&sys.minlabel_order(), false);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let (violations, _) = checker.check_witnessed_responses();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        check_converged(&sys.local_orders(), &sys.replica_states()).expect("converged");
    }
}

#[test]
fn crash_recovery_preserves_completed_operations() {
    let cfg = SystemConfig::new(3)
        .with_seed(42)
        .with_replica(ReplicaConfig::basic())
        .with_retry(SimDuration::from_millis(40));
    let mut sys = SimSystem::new(Counter, cfg);
    let c0 = sys.add_client(0);
    let c2 = sys.add_client(2);

    // Ten increments complete and replicate.
    for _ in 0..10 {
        sys.submit(c0, CounterOp::Increment(1), &[], false);
    }
    sys.run_until_converged(SimTime::from_millis(60_000))
        .expect("phase 1");

    // Replica 0 crashes, losing memory; work continues at replica 2.
    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(1),
        FaultEvent::Crash(ReplicaId(0)),
    );
    let during: Vec<OpId> = (0..5)
        .map(|_| sys.submit(c2, CounterOp::Increment(1), &[], false))
        .collect();
    sys.run_for(SimDuration::from_millis(400));
    for id in &during {
        assert!(
            sys.response(*id).is_some(),
            "replica 2 must keep serving while 0 is down"
        );
    }

    // Recovery; the read (strict, so it needs all replicas) sees all 15.
    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(1),
        FaultEvent::Recover(ReplicaId(0)),
    );
    let audit = sys.submit(c2, CounterOp::Read, &[], true);
    sys.run_until_converged(SimTime::from_millis(120_000))
        .expect("recovered");
    assert_eq!(sys.response(audit), Some(&CounterValue::Count(15)));
    let states = sys.replica_states();
    assert!(
        states.iter().all(|s| *s == 15),
        "states diverged: {states:?}"
    );
}

#[test]
fn eventual_order_unchanged_by_crash() {
    // Operations answered before the crash keep their positions: the
    // recovered replica restores its locally-generated minimum labels from
    // stable storage (§9.3).
    let cfg = SystemConfig::new(2)
        .with_seed(17)
        .with_replica(ReplicaConfig::basic().with_witness())
        .with_retry(SimDuration::from_millis(40));
    let mut sys = SimSystem::new(Counter, cfg);
    let c = sys.add_client(0);
    for _ in 0..8 {
        sys.submit(c, CounterOp::Increment(1), &[], false);
    }
    sys.run_until_converged(SimTime::from_millis(60_000))
        .expect("settled");
    let order_before = sys.minlabel_order();

    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(1),
        FaultEvent::Crash(ReplicaId(0)),
    );
    sys.run_for(SimDuration::from_millis(100));
    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(1),
        FaultEvent::Recover(ReplicaId(0)),
    );
    sys.run_until_converged(SimTime::from_millis(60_000))
        .expect("recovered");

    let order_after = sys.minlabel_order();
    assert_eq!(
        order_before,
        order_after[..order_before.len()].to_vec(),
        "crash must not reorder previously-agreed operations"
    );
}

#[test]
fn isolation_heals_without_state_loss() {
    let cfg = SystemConfig::new(3)
        .with_seed(23)
        .with_retry(SimDuration::from_millis(30));
    let mut sys = SimSystem::new(Counter, cfg);
    let c0 = sys.add_client(0);
    let c1 = sys.add_client(1);

    sys.schedule_fault(SimTime::from_millis(50), FaultEvent::Isolate(ReplicaId(1)));
    sys.schedule_fault(
        SimTime::from_millis(400),
        FaultEvent::Reconnect(ReplicaId(1)),
    );
    for k in 0..12u64 {
        let at = SimTime::from_millis(k * 30);
        // c1's requests target the replica that goes dark.
        let client = if k % 2 == 0 { c0 } else { c1 };
        sys.submit_at(at, client, CounterOp::Increment(1), &[], false);
    }
    sys.run_until_converged(SimTime::from_millis(120_000))
        .expect("partition heals");
    assert_eq!(sys.replica_states(), vec![12, 12, 12]);
}

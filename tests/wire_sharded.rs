//! The sharded TCP deployment end to end, under chaos: a kv workload
//! across two shard clusters on real sockets, with every per-shard
//! listener fronted by a fault-injecting proxy, checked black-box
//! against the paper's behavioural theorems.
//!
//! The per-shard conformance statement mirrors `tests/sharded_conformance.rs`,
//! but over sockets the white-box `ConformanceObserver` (which replays
//! internal step reports) cannot watch the system — so each shard gets
//! the *black-box* [`TraceChecker`] instead (cf. the ISSUE's Vbox /
//! black-box serializability framing): requests and witnessed responses
//! are recorded at the client, and Theorems 5.7/5.8 are verified against
//! the shard's converged final order after shutdown. Green checkers per
//! shard are exactly "each shard's externally-visible trace is
//! explainable by its own ESDS instance".
//!
//! The chaos fault model is read from the `ESDS_CHAOS_*` environment —
//! that is the knob the CI `sharded-wire` matrix turns (loss ∈ {0, 0.05},
//! delay ∈ {0, 5 ms}). When `ESDS_CHAOS_LOSS` is unset the test defaults
//! to 5% loss, so a plain `cargo test` always exercises the lossy path.
//! Every wait in this file is bounded: a lost frame can delay completion
//! (retries re-send it) but can never hang the suite.

use std::time::Duration;

use esds::alg::ReplicaConfig;
use esds::audit::{encode_line, TraceEvent};
use esds::core::{OpId, ShardedOpId};
use esds::datatypes::{KvOp, KvStore, KvValue};
use esds::spec::{check_converged, AuditEvent, TraceChecker};
use esds::wire::{ChaosConfig, ShardedWireConfig, ShardedWireService};

/// The CI matrix's fault model, with a 5% loss floor when unconfigured.
fn chaos_from_env() -> ChaosConfig {
    let mut c = ChaosConfig::from_env(2024);
    if std::env::var("ESDS_CHAOS_LOSS").is_err() {
        c.drop_probability = 0.05;
    }
    c
}

#[test]
fn kv_workload_across_two_shard_clusters_under_chaos() {
    let chaos = chaos_from_env();
    let mut cfg = ShardedWireConfig::new(3).with_chaos(chaos);
    // Witnesses make the black-box Theorem 5.7 check possible; the wider
    // gossip interval keeps the delay proxy (5 ms per frame, in-order)
    // from queueing gossip faster than it can carry it.
    cfg.cluster.replica = ReplicaConfig::default().with_witness();
    cfg.cluster.gossip_interval = Duration::from_millis(20);
    let n_shards = 2u32;
    let mut svc = ShardedWireService::launch(KvStore, n_shards, cfg);
    let table = svc.table();
    let mut c = svc.client();
    let mut checkers: Vec<TraceChecker<KvStore>> =
        (0..n_shards).map(|_| TraceChecker::new(KvStore)).collect();
    // The CI `audit` lane replays this run's externally-visible stream
    // through the *streaming* checker (`audit_replay`): record every
    // event the batch checkers see as a JSONL trace line.
    let mut trace: Vec<String> = Vec::new();

    // A workload that crosses shards: writes over 12 keys, occasional
    // chained reads (cross-shard `prev` when the keys hash apart — the
    // client then awaits the foreign response over the wire before
    // sending), and a strict op now and then (stability through lossy,
    // delayed, possibly duplicated gossip).
    let keys: Vec<String> = (0..12).map(|i| format!("key:{i}")).collect();
    let mut ids: Vec<ShardedOpId> = Vec::new();
    let mut last: Option<ShardedOpId> = None;
    for i in 0..24usize {
        let key = &keys[i % keys.len()];
        let op = if i % 3 == 2 {
            KvOp::get(key)
        } else {
            KvOp::put(key, format!("v{i}"))
        };
        let prev: Vec<ShardedOpId> = if i % 4 == 1 {
            last.into_iter().collect()
        } else {
            vec![]
        };
        let id = c.submit(op, &prev, i % 8 == 5);
        // Cross-shard prev respected, part 1: the submit-time wait means
        // every foreign predecessor was answered before the dependent's
        // request frame went out.
        for p in &prev {
            if c.shard_of(*p) != c.shard_of(id) {
                assert!(
                    c.value_of(*p).is_some(),
                    "dependent {id} sent before foreign prev {p} answered"
                );
            }
        }
        let (shard, desc) = c.local_descriptor(id).expect("just submitted");
        trace.push(encode_line(&TraceEvent {
            shard,
            event: AuditEvent::Request(desc.clone()),
        }));
        checkers[shard as usize]
            .on_request(desc)
            .expect("well-formed per-shard request");
        ids.push(id);
        last = Some(id);
    }
    for id in &ids {
        assert!(
            c.await_response(*id, Duration::from_secs(60)).is_some(),
            "operation {id} lost under chaos (retries should recover it)"
        );
    }

    // Cross-shard prev respected, part 2: a write → foreign write → read
    // chain whose read must observe the first write through the hop.
    let ka = keys
        .iter()
        .find(|k| table.shard_of_key(k) == 0)
        .expect("some key on shard 0");
    let kb = keys
        .iter()
        .find(|k| table.shard_of_key(k) == 1)
        .expect("some key on shard 1");
    let wa = c.submit(KvOp::put(ka, "chain-a"), &[*ids.last().unwrap()], false);
    let wb = c.submit(KvOp::put(kb, "chain-b"), &[wa], false);
    let ra = c.submit(KvOp::get(ka), &[wb], false);
    for id in [wa, wb, ra] {
        let (shard, desc) = c.local_descriptor(id).expect("submitted");
        trace.push(encode_line(&TraceEvent {
            shard,
            event: AuditEvent::Request(desc.clone()),
        }));
        checkers[shard as usize]
            .on_request(desc)
            .expect("well-formed");
        ids.push(id);
    }
    assert_eq!(
        c.await_response(ra, Duration::from_secs(60)),
        Some(KvValue::Value(Some("chain-a".into()))),
        "read through a cross-shard prev chain must see the write"
    );

    // A strict fence per shard, constrained after everything: when it
    // answers, every operation of the shard is stable at every replica,
    // so the shard's final orders are converged and complete.
    for shard in 0..n_shards {
        let key = keys
            .iter()
            .find(|k| table.shard_of_key(k) == shard)
            .expect("every shard owns test keys");
        let fence = c.submit(KvOp::get(key), &ids.clone(), true);
        let (s, desc) = c.local_descriptor(fence).expect("submitted");
        assert_eq!(s, shard);
        trace.push(encode_line(&TraceEvent {
            shard: s,
            event: AuditEvent::Request(desc.clone()),
        }));
        checkers[s as usize].on_request(desc).expect("well-formed");
        assert!(
            c.await_response(fence, Duration::from_secs(120)).is_some(),
            "strict fence on shard {shard} did not stabilize under chaos"
        );
        ids.push(fence);
    }

    // One barrier-strict scatter-gather read under the same fault model
    // (the ISSUE's fixed bug, live on sockets): `Keys` is a whole-object
    // query, so on this two-shard table it fans out one hidden
    // sub-operation per shard behind a per-shard stability barrier, and
    // the merged answer must be the exact cross-shard union — not the
    // pre-fix single home shard's slice.
    let mut expected: std::collections::BTreeSet<String> = keys
        .iter()
        .enumerate()
        .filter(|(j, _)| j % 3 != 2) // j and j+12 hash to the same op kind
        .map(|(_, k)| k.clone())
        .collect();
    expected.insert(ka.clone());
    expected.insert(kb.clone());
    let gq = c.submit(KvOp::Keys, &ids.clone(), true);
    assert_eq!(c.shard_of(gq), None, "a gather lives on every shard");
    assert_eq!(
        c.await_response(gq, Duration::from_secs(120)),
        Some(KvValue::Keys(expected.into_iter().collect())),
        "barrier-strict Keys must return the exact cross-shard union under chaos"
    );
    // Its hidden sub-operations are ordinary per-shard requests: feed
    // them to the black-box checkers and the audit trace like any other
    // traffic.
    let subs = c.gather_sub_trace(gq).expect("gather answered above");
    assert_eq!(subs.len(), n_shards as usize, "one sub-op per shard");
    for (shard, desc, value, witness) in subs {
        trace.push(encode_line(&TraceEvent {
            shard,
            event: AuditEvent::Request(desc.clone()),
        }));
        checkers[shard as usize]
            .on_request(desc.clone())
            .expect("well-formed gather sub-op");
        trace.push(encode_line(&TraceEvent {
            shard,
            event: AuditEvent::Response {
                id: desc.id,
                value: value.clone(),
                witness: witness.clone(),
            },
        }));
        checkers[shard as usize].on_response(desc.id, value, witness);
    }

    // Feed the recorded responses (with witnesses) to each shard's
    // checker.
    for id in &ids {
        let (shard, desc) = c.local_descriptor(*id).expect("submitted");
        let value = c.value_of(*id).expect("awaited above").clone();
        let witness = c.witness_of(*id).cloned();
        trace.push(encode_line(&TraceEvent {
            shard,
            event: AuditEvent::Response {
                id: desc.id,
                value: value.clone(),
                witness: witness.clone(),
            },
        }));
        checkers[shard as usize].on_response(desc.id, value, witness);
    }

    // The proxies really were in the path — and, when loss is on, really
    // lost frames that the protocol then recovered from.
    let stats = svc.chaos_stats();
    assert!(stats.forwarded > 0, "chaos proxies must carry the traffic");
    if chaos.drop_probability > 0.0 {
        assert!(stats.dropped > 0, "lossy run should actually drop frames");
    }

    // Shutdown; per-shard black-box conformance must be green.
    let shards = svc.shutdown();
    assert_eq!(shards.len(), n_shards as usize);
    for (s, reps) in shards.iter().enumerate() {
        let orders: Vec<Vec<OpId>> = reps.iter().map(|r| r.local_order()).collect();
        let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
        check_converged(&orders, &states)
            .unwrap_or_else(|e| panic!("shard {s} diverged after the strict fence: {e}"));
        let eto = orders[0].clone();
        // The shard's converged order *is* its eventual total order:
        // append it as the trace's `stab` stream.
        for &id in &eto {
            trace.push(encode_line(&TraceEvent {
                shard: s as u32,
                event: AuditEvent::Stabilize(id),
            }));
        }
        let violations = checkers[s].check_eventual_order(&eto, false);
        assert!(
            violations.is_empty(),
            "shard {s} eventual-order violations: {violations:?}"
        );
        let (violations, skipped) = checkers[s].check_witnessed_responses();
        assert!(
            violations.is_empty(),
            "shard {s} witness violations: {violations:?}"
        );
        assert_eq!(skipped, 0, "every response should have carried a witness");
        assert!(
            !checkers[s].responses().is_empty(),
            "shard {s} saw no traffic — workload did not cross shards"
        );
    }

    // CI audit lane: persist the trace for `audit_replay` when asked.
    if let Ok(path) = std::env::var("ESDS_TRACE_OUT") {
        let mut out = trace.join("\n");
        out.push('\n');
        std::fs::write(&path, out).expect("writing ESDS_TRACE_OUT");
        eprintln!("wrote {} trace lines to {path}", trace.len());
    }
}

#[test]
fn version_handshake_holds_under_chaos() {
    // A stale client against a grown (v1) deployment, with the chaos
    // matrix's fault model on every listener: the NAK → adopt → re-route
    // path must survive loss and delay (a lost NAK is re-provoked by the
    // client's retry of the refused request).
    let chaos = chaos_from_env();
    let mut grown = esds::core::RoutingTable::uniform(2);
    grown.apply(&esds::core::MigrationPlan::add_shard(&grown));
    let mut cfg = ShardedWireConfig::new(2).with_chaos(chaos);
    cfg.cluster.gossip_interval = Duration::from_millis(20);
    let mut svc = ShardedWireService::launch_with_table(KvStore, grown.clone(), cfg);
    let mut c = svc.client_with_table(esds::core::RoutingTable::uniform(2));

    let key = (0..1000)
        .map(|i| format!("k{i}"))
        .find(|k| grown.shard_of_key(k) != esds::core::RoutingTable::uniform(2).shard_of_key(k))
        .expect("some key moved to the new shard");
    let put = c.submit(KvOp::put(&key, "fresh"), &[], false);
    assert_eq!(
        c.await_response(put, Duration::from_secs(60)),
        Some(KvValue::Ack),
        "stale-routed write must be NAKed and re-routed, not lost"
    );
    assert_eq!(c.table_version(), 1, "client adopted the NAK's table");
    assert_eq!(c.shard_of(put), Some(grown.shard_of_key(&key)));
    svc.shutdown();
}

//! End-to-end scenarios for the sharded service layer: the `ShardRouter`
//! partitioning kv/directory workloads across independent replica groups,
//! cross-shard `prev` enforcement, per-shard convergence, and the
//! threaded `ShardedService` — all through the `esds` facade.

use std::collections::BTreeMap;

use esds::core::{KeyedDataType, ShardRouter, ShardedOpId};
use esds::datatypes::{Directory, DirectoryOp, DirectoryValue, KvOp, KvStore, KvValue};
use esds::harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
use esds::spec::check_converged;

fn kv_cfg(n_shards: usize, seed: u64) -> ShardedSystemConfig {
    ShardedSystemConfig::new(n_shards, SystemConfig::new(3).with_seed(seed))
}

/// A sharded kv store behaves like one kv store: writes land on their
/// key's shard, reads constrained after them observe them, and the final
/// union of per-shard states equals the sequential map.
#[test]
fn sharded_kv_equals_sequential_map() {
    let mut sys = ShardedSimSystem::new(KvStore, kv_cfg(4, 11));
    let c = sys.add_client(0);
    let mut expect: BTreeMap<String, String> = BTreeMap::new();
    let mut last_write: BTreeMap<String, ShardedOpId> = BTreeMap::new();
    for i in 0..40 {
        let k = format!("k{}", i % 10);
        let v = format!("v{i}");
        // Per-key ordering via prev on the previous write of the same key
        // (same key ⇒ same shard ⇒ the group's own protocol enforces it).
        let prev: Vec<ShardedOpId> = last_write.get(&k).copied().into_iter().collect();
        let id = sys.submit(c, KvOp::put(&k, &v), &prev, false);
        last_write.insert(k.clone(), id);
        expect.insert(k, v);
    }
    sys.run_until_quiescent();

    // Read every key back, constrained after its last write.
    let mut reads = Vec::new();
    for (k, wid) in &last_write {
        reads.push((k.clone(), sys.submit(c, KvOp::get(k), &[*wid], false)));
    }
    sys.run_until_quiescent();
    for (k, rid) in reads {
        assert_eq!(
            sys.response(rid),
            Some(&KvValue::Value(Some(expect[&k].clone()))),
            "key {k}"
        );
    }

    // Every shard's replica group individually converged, and the union
    // of the per-shard maps is exactly the expected map.
    let mut union: BTreeMap<String, String> = BTreeMap::new();
    for shard in sys.shards() {
        assert!(check_converged(&shard.local_orders(), &shard.replica_states()).is_ok());
        union.extend(shard.replica_states()[0].clone());
    }
    assert_eq!(union, expect);
}

/// The §11.2 directory idiom survives sharding: a name's creation and its
/// `prev`-ordered initialization stay on one shard, and lookups
/// constrained after initialization see the attribute on every shard.
#[test]
fn sharded_directory_create_then_init_idiom() {
    let mut sys = ShardedSimSystem::new(
        Directory,
        ShardedSystemConfig::new(4, SystemConfig::new(3).with_seed(21)),
    );
    let c = sys.add_client(0);
    let mut lookups = Vec::new();
    for i in 0..12 {
        let name = format!("host{i}");
        let create = sys.submit(c, DirectoryOp::create(&name), &[], false);
        let init = sys.submit(
            c,
            DirectoryOp::set_attr(&name, "addr", format!("10.0.0.{i}")),
            &[create],
            false,
        );
        lookups.push((
            i,
            sys.submit(c, DirectoryOp::lookup(&name, "addr"), &[init], false),
        ));
    }
    sys.run_until_quiescent();
    for (i, id) in lookups {
        assert_eq!(
            sys.response(id),
            Some(&DirectoryValue::Attr(Some(format!("10.0.0.{i}")))),
            "host{i}"
        );
    }
    // Names spread across the groups.
    let loads = sys.shard_loads();
    assert!(
        loads.iter().filter(|l| **l > 0).count() >= 2,
        "12 names must occupy several shards: {loads:?}"
    );
}

/// A strict op on one shard does not wait for other shards: strictness is
/// a per-group stability condition.
#[test]
fn strict_is_per_shard_stability() {
    let mut sys = ShardedSimSystem::new(KvStore, kv_cfg(4, 31));
    let c = sys.add_client(0);
    let strict_put = sys.submit(c, KvOp::put("a", "1"), &[], true);
    // Load up a *different* shard with work; shard of "a" is unaffected.
    let router = sys.router();
    let other_key = (0..100)
        .map(|i| format!("x{i}"))
        .find(|k| router.shard_of_key(k) != router.shard_of_key("a"))
        .expect("key on another shard");
    for i in 0..20 {
        sys.submit(c, KvOp::put(&other_key, format!("{i}")), &[], false);
    }
    sys.run_until_quiescent();
    assert_eq!(sys.response(strict_put), Some(&KvValue::Ack));
}

/// Mixed cross-shard dependency chains resolve, and the routing agrees
/// with a fresh router built from the shard count alone (the property
/// every front end relies on).
#[test]
fn routing_is_shared_knowledge() {
    let n_shards = 5;
    let mut sys = ShardedSimSystem::new(KvStore, kv_cfg(n_shards, 41));
    let external = ShardRouter::new(n_shards as u32);
    let c = sys.add_client(0);
    let mut prev: Vec<ShardedOpId> = Vec::new();
    for i in 0..20 {
        let key = format!("item{i}");
        let id = sys.submit(c, KvOp::put(&key, "x"), &prev, false);
        let (placed, _) = sys.placement(id).expect("placed");
        assert_eq!(
            placed,
            external.shard_of_key(&key),
            "system and external router must agree on {key}"
        );
        assert_eq!(placed, external.route(&KvStore, &KvOp::put(&key, "x")));
        prev = vec![id];
    }
    sys.run_until_quiescent();
    assert_eq!(sys.completed_count(), 20);
}

/// The threaded sharded runtime answers through the same facade.
#[test]
fn sharded_runtime_end_to_end() {
    use esds::runtime::{RuntimeConfig, ShardedService};
    use std::time::Duration;

    let mut svc = ShardedService::start(KvStore, 3, RuntimeConfig::new(2));
    let mut client = svc.client();
    let mut ids = Vec::new();
    for i in 0..9 {
        ids.push((
            i,
            client.submit(KvOp::put(format!("k{i}"), format!("{i}")), &[], false),
        ));
    }
    for (i, id) in &ids {
        assert_eq!(
            client.await_response(*id, Duration::from_secs(10)),
            Some(KvValue::Ack),
            "put k{i}"
        );
    }
    // A cross-shard dependent read: submit blocks on the foreign put,
    // then the read observes it.
    let read = client.submit(KvOp::get("k3"), &[ids[3].1], false);
    assert_eq!(
        client.await_response(read, Duration::from_secs(10)),
        Some(KvValue::Value(Some("3".into())))
    );
    let states = svc.shutdown();
    assert_eq!(states.len(), 3, "one replica group per shard");
}

/// Live rebalancing through the facade: grow, then shrink, a sharded kv
/// deployment under a continuing workload. Every key keeps its
/// last-written value across both handoffs, and the sequential-map
/// equivalence of `sharded_kv_equals_sequential_map` still holds over
/// the *final* table (drained groups keep stale history, but no key
/// routes to them any more).
#[test]
fn sharded_kv_rebalance_grow_then_shrink() {
    let mut sys = ShardedSimSystem::new(KvStore, kv_cfg(2, 61));
    let c = sys.add_client(0);
    let mut expect: BTreeMap<String, String> = BTreeMap::new();
    let mut last_write: BTreeMap<String, ShardedOpId> = BTreeMap::new();
    let mut put = |sys: &mut ShardedSimSystem<KvStore>, i: usize| {
        let k = format!("k{}", i % 12);
        let v = format!("v{i}");
        let prev: Vec<ShardedOpId> = last_write.get(&k).copied().into_iter().collect();
        let id = sys.submit(c, KvOp::put(&k, &v), &prev, false);
        last_write.insert(k.clone(), id);
        expect.insert(k, v);
    };
    for i in 0..16 {
        put(&mut sys, i);
    }
    sys.run_for(esds::sim::SimDuration::from_millis(40));
    // Grow 2 → 3 while writing continues.
    let new = sys.begin_add_shard();
    assert_eq!(new, 2);
    for i in 16..32 {
        put(&mut sys, i);
    }
    sys.run_until_quiescent();
    assert_eq!(sys.table_version(), 1);
    // Shrink: drain shard 0 (the original home shard) while writing.
    sys.begin_drain_shard(0);
    for i in 32..48 {
        put(&mut sys, i);
    }
    sys.run_until_quiescent();
    assert_eq!(sys.table_version(), 2);
    assert!(sys.router().table().slots_of(0).is_empty());

    // Read everything back, constrained after its last write.
    let mut reads = Vec::new();
    for (k, wid) in &last_write {
        reads.push((k.clone(), sys.submit(c, KvOp::get(k), &[*wid], false)));
    }
    sys.run_until_quiescent();
    for (k, rid) in reads {
        let (shard, _) = sys.placement(rid).expect("placed");
        assert_ne!(shard, 0, "key {k} still routed to the drained shard");
        assert_eq!(
            sys.response(rid),
            Some(&KvValue::Value(Some(expect[&k].clone()))),
            "key {k} across two rebalances"
        );
    }
    // Per-shard convergence everywhere, including the drained group.
    for shard in sys.shards() {
        assert!(check_converged(&shard.local_orders(), &shard.replica_states()).is_ok());
    }
}

/// `KeyedDataType` keys imply commutativity across shards (the soundness
/// condition the router relies on): sample operator pairs with different
/// keys and brute-force check independence.
#[test]
fn different_keys_imply_independence() {
    use esds::core::{commutes_at, oblivious_at};
    let dt = KvStore;
    let ops = [
        KvOp::put("a", "1"),
        KvOp::get("a"),
        KvOp::remove("a"),
        KvOp::put("b", "2"),
        KvOp::get("b"),
        KvOp::remove("b"),
    ];
    let mut state = BTreeMap::new();
    state.insert("a".to_string(), "0".to_string());
    state.insert("b".to_string(), "0".to_string());
    for x in &ops {
        for y in &ops {
            let (kx, ky) = (dt.shard_key(x), dt.shard_key(y));
            if kx.is_some() && ky.is_some() && kx != ky {
                assert!(commutes_at(&dt, &state, x, y), "{x:?} vs {y:?}");
                assert!(oblivious_at(&dt, &state, x, y), "{x:?} vs {y:?}");
            }
        }
    }
}
